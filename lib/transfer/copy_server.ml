(* The CopyServer (paper Section 4.2): bulk transfer as ordinary PPCs.

   "The actual transfer of data is done by a separate CopyTo or CopyFrom
   request.  CopyTo and CopyFrom are normal PPC requests made to the
   CopyServer."

   Since the async bulk-data engine landed, the CopyServer is a thin
   compatibility shim over it: the handler validates the caller's grant
   (control plane, in registers), then routes the transfer through the
   engine as a descriptor — submitted to the simulated DMA device
   ([Mover.manual]) which is pumped to completion before the PPC
   returns.  The synchronous callers see the same contract as before;
   the bytes move on the descriptor path, charged as real cached memory
   traffic on the worker's CPU.

   Register slots (CopyTo/CopyFrom):

     0: grant owner's program id (the peer for CopyFrom, self for CopyTo)
     1: source address    2: destination address    3: length in bytes

   CopyGrant (the zero-copy path) consumes a covering grant whole:
   ownership of the range is handed to the caller and the grant is
   revoked on completion.  Slots: 0 = owner's program id, 1 = range
   base, 3 = length; no bytes cross — the engine charges one page-walk
   per 4 KiB, the stand-in for real map/remap cost. *)

module Errc = Ipc_intf.Errc
module Wellknown = Ipc_intf.Wellknown

let op_copy_to = Wellknown.op_copy_to
let op_copy_from = Wellknown.op_copy_from
let op_copy_grant = Wellknown.op_copy_grant

type t = {
  regions : Region.t;
  engine : Copy_engine.t;
  mover : Mover.t;
  eng_client : Copy_engine.client;
  mutable cur_ctx : Ppc.Call_ctx.t option;  (* set around the sync pump *)
  mutable last_rc : int;  (* completion rc of the pumped descriptor *)
  mutable ep_id : int;
  mutable bytes_copied : int;
  mutable denied : int;
  mutable rejected_oversize : int;
  mutable handoff_bytes : int;
}

let regions t = t.regions
let engine t = t.engine
let ep_id t = t.ep_id
let bytes_copied t = t.bytes_copied
let denied t = t.denied
let rejected_oversize t = t.rejected_oversize
let handoffs t = Region.handoffs t.regions
let handoff_bytes t = t.handoff_bytes

(* The copy loop: realistic cached word-at-a-time traffic, bounded per
   call so a single transfer cannot monopolise a processor for ever.
   Oversized requests answer [Errc.too_big] — callers chunk. *)
let max_bytes_per_call = 64 * 1024

let do_copy cpu ~src ~dst ~len =
  let words = (len + 3) / 4 in
  for i = 0 to words - 1 do
    Machine.Cpu.load cpu (src + (4 * i));
    Machine.Cpu.store cpu (dst + (4 * i))
  done

(* Simulated cost of consuming a grant: revoking the grant and moving
   the pages between address spaces costs a table walk, the remap, and
   a TLB shootdown across processors — thousands of cycles of fixed
   overhead — plus a page-map update per 4 KiB.  Cheap per byte, so
   the handoff wins for large payloads; the heavy fixed part keeps it
   honest for small ones. *)
let grant_fixed_instrs = 5000
let grant_page_instrs = 24

(* Programming the DMA engine is not free either: descriptor write,
   doorbell, completion reap.  This fixed charge is why tiny payloads
   stay in the registers — the classic crossover the sweep locates. *)
let dma_setup_instrs = 250

(* Descriptor semantics on the sim substrate.  The engine's [exec] runs
   while the handler pumps the manual mover, so [cur_ctx] is always the
   PPC whose transfer this is; costs land on that worker's CPU. *)
let sim_exec t (d : Copy_desc.t) =
  match t.cur_ctx with
  | None -> Errc.copy_fault
  | Some ctx ->
      let cpu = ctx.Ppc.Call_ctx.cpu in
      if d.op = Wellknown.bulk_copy then begin
        Machine.Cpu.instr ~code:ctx.Ppc.Call_ctx.server_code cpu
          dma_setup_instrs;
        do_copy cpu ~src:d.src ~dst:d.dst ~len:d.len;
        Errc.ok
      end
      else if d.op = Wellknown.bulk_grant then begin
        match Region.handoff t.regions ~grant_id:d.src with
        | None -> Errc.copy_fault
        | Some g ->
            let pages = (g.Region.len + 4095) / 4096 in
            Machine.Cpu.instr ~code:ctx.Ppc.Call_ctx.server_code cpu
              (grant_fixed_instrs + (grant_page_instrs * pages));
            Errc.ok
      end
      else Errc.bad_request

(* Route one descriptor through the engine and pump the DMA device dry:
   the shim's synchronous heart. *)
let pump t ctx ~op ~src ~dst ~len =
  t.cur_ctx <- Some ctx;
  let rc =
    Copy_engine.submit t.eng_client ~op ~src ~src_off:0 ~dst ~dst_off:0 ~len
      ~tag:0
  in
  if rc <> Errc.ok then begin
    t.cur_ctx <- None;
    rc
  end
  else begin
    ignore (Copy_engine.flush t.eng_client);
    while Copy_engine.outstanding t.eng_client > 0 do
      ignore (Mover.step t.mover ~budget:32);
      ignore (Copy_engine.reap t.eng_client)
    done;
    t.cur_ctx <- None;
    t.last_rc
  end

let handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code ctx.Call_ctx.cpu 40;
  Null_server.touch_stack ctx ~words:6;
  let peer = Reg_args.get args 0 in
  let src = Reg_args.get args 1 in
  let dst = Reg_args.get args 2 in
  let len = Reg_args.get args 3 in
  let op = Reg_args.op args in
  let caller = ctx.Call_ctx.caller_program in
  if op = op_copy_grant then begin
    (* Zero-copy: hand the covering grant's range over whole.  The
       length is unbounded — nothing is copied. *)
    if len <= 0 then Reg_args.set_rc args Reg_args.err_bad_request
    else
      match Region.covering t.regions ~owner:peer ~grantee:caller ~base:src ~len with
      | None ->
          t.denied <- t.denied + 1;
          Reg_args.set_rc args Reg_args.err_denied
      | Some g ->
          let rc =
            pump t ctx ~op:Wellknown.bulk_grant ~src:g.Region.grant_id
              ~dst:caller ~len:g.Region.len
          in
          if rc = Errc.ok then begin
            t.handoff_bytes <- t.handoff_bytes + g.Region.len;
            Reg_args.set args 0 g.Region.len
          end;
          Reg_args.set_rc args rc
  end
  else if len <= 0 then Reg_args.set_rc args Reg_args.err_bad_request
  else if len > max_bytes_per_call then begin
    (* Distinct wire code: the caller's request was well-formed but too
       large for one call — chunk and retry, nothing was moved. *)
    t.rejected_oversize <- t.rejected_oversize + 1;
    Reg_args.set_rc args Reg_args.err_too_big
  end
  else begin
    (* CopyTo writes into the peer's granted range; CopyFrom reads from
       it.  The caller's own range needs no grant. *)
    let permitted =
      if op = op_copy_to then
        Region.check t.regions ~owner:peer ~grantee:caller ~base:dst ~len
          ~dir:`Write
      else if op = op_copy_from then
        Region.check t.regions ~owner:peer ~grantee:caller ~base:src ~len
          ~dir:`Read
      else false
    in
    if not permitted then begin
      t.denied <- t.denied + 1;
      Reg_args.set_rc args Reg_args.err_denied
    end
    else begin
      let rc = pump t ctx ~op:Wellknown.bulk_copy ~src ~dst ~len in
      if rc = Errc.ok then begin
        t.bytes_copied <- t.bytes_copied + len;
        Reg_args.set args 0 len
      end;
      Reg_args.set_rc args rc
    end
  end

let install ppc =
  let rec t =
    lazy
      (let engine = Copy_engine.create (fun d -> sim_exec (Lazy.force t) d) in
       let eng_client =
         Copy_engine.connect ~capacity:8
           ~on_complete:(fun ~tag:_ ~rc -> (Lazy.force t).last_rc <- rc)
           engine
       in
       {
         regions = Region.create ();
         engine;
         mover = Mover.manual engine;
         eng_client;
         cur_ctx = None;
         last_rc = Errc.ok;
         ep_id = -1;
         bytes_copied = 0;
         denied = 0;
         rejected_oversize = 0;
         handoff_bytes = 0;
       })
  in
  let t = Lazy.force t in
  let server = Ppc.make_kernel_server ppc ~name:"copy-server" () in
  let ep = Ppc.register_direct ppc ~server ~handler:(handler t) in
  t.ep_id <- Ppc.Entry_point.id ep;
  t

(* Client-side stubs. *)

let copy_call t ppc ~client ~op ~peer ~src ~dst ~len =
  let open Ppc in
  let args = Reg_args.make () in
  Reg_args.set args 0 peer;
  Reg_args.set args 1 src;
  Reg_args.set args 2 dst;
  Reg_args.set args 3 len;
  Reg_args.set_op args ~op ~flags:0;
  Ppc.call ppc ~client ~opflags:(Reg_args.op_flags ~op ~flags:0) ~ep_id:t.ep_id
    args

let copy_to t ppc ~client ~peer ~src ~dst ~len =
  copy_call t ppc ~client ~op:op_copy_to ~peer ~src ~dst ~len

let copy_from t ppc ~client ~peer ~src ~dst ~len =
  copy_call t ppc ~client ~op:op_copy_from ~peer ~src ~dst ~len

let grant_handoff t ppc ~client ~peer ~base ~len =
  copy_call t ppc ~client ~op:op_copy_grant ~peer ~src:base ~dst:0 ~len
