(* The asynchronous bulk-data engine (the tentpole of the "Bulk data
   plane", ARCHITECTURE.md).

   Control-plane PPCs stay on the 8-register path; bulk payloads move
   off the caller's critical path onto a dedicated mover.  Each client
   owns a preallocated descriptor slab and a pair of SPSC rings:

     client --submit*--> [submission ring] --drain--> mover
     client <--reap----- [completion ring] <--post--- mover

   Submission is batched: [submit] only stages descriptors; [flush]
   rings the mover's doorbell once for the whole batch.  Completions
   are reaped without blocking, so handler execution overlaps
   in-flight copies.  The rings carry slab indices (immediate ints,
   dummy -1) and both rings have the slab's capacity, so a completion
   post can never fail: every in-flight descriptor has a reserved
   completion slot.  The warm submit→flush→reap path allocates
   nothing.

   The engine core is substrate-neutral: what a descriptor *means* is
   supplied as an [exec] callback.  The runtime substrate executes
   real [Bytes.blit]s over the bounded {!Buffers} store; the simulator
   charges cycle costs through the CopyServer shim (see
   [Copy_server]).  [Mover] supplies the drain loop — a spawned domain
   on the real substrate, a manually stepped DMA device on the sim
   substrate. *)

module Errc = Ipc_intf.Errc
module Wellknown = Ipc_intf.Wellknown

type exec = Copy_desc.t -> int
(* Executes one descriptor, returns its Errc completion code.  Runs on
   the mover; must not raise (a raise is contained to copy_fault). *)

type client = {
  cid : int;
  descs : Copy_desc.t array;
  sq : int Runtime.Spsc_ring.Raw.t;  (* client -> mover: slab indices *)
  cq : int Runtime.Spsc_ring.Raw.t;  (* mover -> client: slab indices *)
  free : int array;  (* LIFO of free slab indices (client-owned) *)
  mutable free_len : int;
  mutable staged : int;  (* submitted since the last flush *)
  mutable outstanding : int;  (* submitted, not yet reaped *)
  mutable on_complete : tag:int -> rc:int -> unit;
  mutable submitted : int;
  mutable reaped : int;
  mutable rejected : int;  (* submit refused: slab/ring backpressure *)
  mutable failed_swept : int;  (* failed by the post-death sweep *)
  eng : t;
}

and t = {
  exec : exec;
  bell : Runtime.Doorbell.t;
  clients : client option array;
  n_clients : int Atomic.t;
  connect_mu : Mutex.t;
  kill : bool Atomic.t;  (* mover: exit now, abandon in-flight work *)
  quiesce : bool Atomic.t;  (* mover: drain dry, then exit *)
  stopped : bool Atomic.t;  (* mover has exited; set last, release *)
  served : int Atomic.t;
  bytes_copied : int Atomic.t;
  grants_completed : int Atomic.t;
  copy_faults : int Atomic.t;
}

let default_on_complete ~tag:_ ~rc:_ = ()

let create ?(max_clients = 16) exec =
  {
    exec;
    bell = Runtime.Doorbell.create ();
    clients = Array.make max_clients None;
    n_clients = Atomic.make 0;
    connect_mu = Mutex.create ();
    kill = Atomic.make false;
    quiesce = Atomic.make false;
    stopped = Atomic.make false;
    served = Atomic.make 0;
    bytes_copied = Atomic.make 0;
    grants_completed = Atomic.make 0;
    copy_faults = Atomic.make 0;
  }

let connect ?(capacity = 64) ?(on_complete = default_on_complete) eng =
  if capacity <= 0 || capacity land (capacity - 1) <> 0 then
    invalid_arg "Copy_engine.connect: capacity must be a positive power of two";
  Mutex.lock eng.connect_mu;
  let cid = Atomic.get eng.n_clients in
  if cid >= Array.length eng.clients then begin
    Mutex.unlock eng.connect_mu;
    invalid_arg "Copy_engine.connect: client table full"
  end;
  let c =
    {
      cid;
      descs = Array.init capacity (fun index -> Copy_desc.make ~index);
      sq = Runtime.Spsc_ring.Raw.create ~capacity ~dummy:(-1);
      cq = Runtime.Spsc_ring.Raw.create ~capacity ~dummy:(-1);
      free = Array.init capacity (fun i -> capacity - 1 - i);
      free_len = capacity;
      staged = 0;
      outstanding = 0;
      on_complete;
      submitted = 0;
      reaped = 0;
      rejected = 0;
      failed_swept = 0;
      eng;
    }
  in
  eng.clients.(cid) <- Some c;
  (* Publish the slot before the count: the mover iterates [0, n). *)
  Atomic.incr eng.n_clients;
  Mutex.unlock eng.connect_mu;
  c

let set_on_complete c f = c.on_complete <- f

(* ---- client side (producer) ----------------------------------------- *)

let submit c ~op ~src ~src_off ~dst ~dst_off ~len ~tag =
  if Atomic.get c.eng.stopped then Errc.killed
  else if c.free_len = 0 then begin
    c.rejected <- c.rejected + 1;
    Errc.retry
  end
  else begin
    let idx = c.free.(c.free_len - 1) in
    let d = c.descs.(idx) in
    d.op <- op;
    d.src <- src;
    d.src_off <- src_off;
    d.dst <- dst;
    d.dst_off <- dst_off;
    d.len <- len;
    d.tag <- tag;
    d.rc <- Errc.ok;
    d.client <- c.cid;
    d.state <- Copy_desc.st_submitted;
    if Runtime.Spsc_ring.Raw.try_push c.sq idx then begin
      c.free_len <- c.free_len - 1;
      c.staged <- c.staged + 1;
      c.outstanding <- c.outstanding + 1;
      c.submitted <- c.submitted + 1;
      Errc.ok
    end
    else begin
      (* Unreachable while ring capacity = slab capacity; kept for
         defence in depth. *)
      d.state <- Copy_desc.st_free;
      c.rejected <- c.rejected + 1;
      Errc.retry
    end
  end

let flush c =
  let n = c.staged in
  if n > 0 then begin
    c.staged <- 0;
    Runtime.Doorbell.ring c.eng.bell
  end;
  n

let rec drain_cq c n =
  let idx = Runtime.Spsc_ring.Raw.try_pop c.cq in
  if idx < 0 then n
  else begin
    let d = c.descs.(idx) in
    let tag = d.tag and rc = d.rc in
    d.state <- Copy_desc.st_free;
    c.free.(c.free_len) <- idx;
    c.free_len <- c.free_len + 1;
    c.outstanding <- c.outstanding - 1;
    c.reaped <- c.reaped + 1;
    c.on_complete ~tag ~rc;
    drain_cq c (n + 1)
  end

(* After the mover has exited ([stopped] is set *after* its last touch
   of any descriptor), everything still in flight is stranded: fail it
   here, exactly once per descriptor, with [handler_fault] — same code
   a crashed in-register handler answers with. *)
let sweep_dead c n0 =
  let n = ref n0 in
  for idx = 0 to Array.length c.descs - 1 do
    let d = c.descs.(idx) in
    if d.state = Copy_desc.st_submitted then begin
      let tag = d.tag in
      d.rc <- Errc.handler_fault;
      d.state <- Copy_desc.st_free;
      c.free.(c.free_len) <- idx;
      c.free_len <- c.free_len + 1;
      c.outstanding <- c.outstanding - 1;
      c.failed_swept <- c.failed_swept + 1;
      c.on_complete ~tag ~rc:Errc.handler_fault;
      incr n
    end
  done;
  !n

let reap c =
  let n = drain_cq c 0 in
  if c.outstanding > 0 && Atomic.get c.eng.stopped then
    (* Drain once more: completions posted before death win over the
       sweep. *)
    sweep_dead c (drain_cq c n)
  else n

let outstanding c = c.outstanding

type client_stats = {
  cs_submitted : int;
  cs_reaped : int;
  cs_rejected : int;
  cs_failed_swept : int;
}

let client_stats c =
  {
    cs_submitted = c.submitted;
    cs_reaped = c.reaped;
    cs_rejected = c.rejected;
    cs_failed_swept = c.failed_swept;
  }

let client_id c = c.cid

(* ---- mover side (consumer) ------------------------------------------ *)

let doorbell eng = eng.bell

let pending eng =
  let n = ref 0 in
  for i = 0 to Atomic.get eng.n_clients - 1 do
    match eng.clients.(i) with
    | Some c -> n := !n + Runtime.Spsc_ring.Raw.length c.sq
    | None -> ()
  done;
  !n

let exec_one eng (d : Copy_desc.t) =
  let rc = try eng.exec d with _ -> Errc.copy_fault in
  d.rc <- rc;
  Atomic.incr eng.served;
  if rc = Errc.ok then begin
    if d.op = Wellknown.bulk_grant then Atomic.incr eng.grants_completed
    else ignore (Atomic.fetch_and_add eng.bytes_copied d.len)
  end
  else Atomic.incr eng.copy_faults

(* One pass: up to [budget] descriptors per client, round-robin.
   Returns how many were executed.  Only the mover calls this. *)
let drain eng ~budget =
  let total = ref 0 in
  for i = 0 to Atomic.get eng.n_clients - 1 do
    match eng.clients.(i) with
    | None -> ()
    | Some c ->
        let k = ref 0 in
        let continue = ref true in
        while !continue && !k < budget do
          let idx = Runtime.Spsc_ring.Raw.try_pop c.sq in
          if idx < 0 then continue := false
          else begin
            let d = c.descs.(idx) in
            exec_one eng d;
            d.state <- Copy_desc.st_completed;
            (* Cannot fail: cq capacity = slab capacity. *)
            ignore (Runtime.Spsc_ring.Raw.try_push c.cq idx);
            incr k
          end
        done;
        total := !total + !k
  done;
  !total

let request_kill eng = Atomic.set eng.kill true
let request_quiesce eng = Atomic.set eng.quiesce true
let killed eng = Atomic.get eng.kill
let quiescing eng = Atomic.get eng.quiesce
let mark_stopped eng = Atomic.set eng.stopped true
let stopped eng = Atomic.get eng.stopped

type stats = {
  served : int;
  bytes_copied : int;
  grants_completed : int;
  copy_faults : int;
  doorbell_rings : int;
  doorbell_wakes : int;
  mover_parks : int;
}

let stats (eng : t) =
  {
    served = Atomic.get eng.served;
    bytes_copied = Atomic.get eng.bytes_copied;
    grants_completed = Atomic.get eng.grants_completed;
    copy_faults = Atomic.get eng.copy_faults;
    doorbell_rings = Runtime.Doorbell.rings eng.bell;
    doorbell_wakes = Runtime.Doorbell.wakes eng.bell;
    mover_parks = Runtime.Doorbell.parks eng.bell;
  }

(* ---- the runtime substrate's region store --------------------------- *)

(* A bounded table of byte regions with atomic owner words: the
   real-domain analogue of the simulator's granted address ranges.
   [exec] interprets descriptors over it:

     bulk_copy   range-check src/dst, then one [Bytes.blit]
     bulk_grant  the submitting client must own [src]; ownership flips
                 to the client named by [dst] and the mover touches one
                 byte per 4 KiB page — the honest stand-in for the
                 map/remap cost a real ownership transfer pays, so the
                 grant-vs-copy crossover in the bench is not a freebie.

   The table is bounded like every other pool in the runtime:
   exhaustion answers [Errc.retry] (PR5 backpressure taxonomy), never
   unbounded growth. *)
module Buffers = struct
  let page = 4096

  type store = {
    bufs : Bytes.t array;
    owners : int Atomic.t array;
    b_lens : int array;
    n : int Atomic.t;
    mu : Mutex.t;
    mutable touch : int;  (* page-touch sink; defeats dead-code removal *)
  }

  let create ?(max_regions = 64) () =
    {
      bufs = Array.make max_regions Bytes.empty;
      owners = Array.init max_regions (fun _ -> Atomic.make (-1));
      b_lens = Array.make max_regions 0;
      n = Atomic.make 0;
      mu = Mutex.create ();
      touch = 0;
    }

  let add st ~owner bytes =
    Mutex.lock st.mu;
    let id = Atomic.get st.n in
    if id >= Array.length st.bufs then begin
      Mutex.unlock st.mu;
      Error Errc.retry
    end
    else begin
      st.bufs.(id) <- bytes;
      st.b_lens.(id) <- Bytes.length bytes;
      Atomic.set st.owners.(id) owner;
      Atomic.incr st.n;
      Mutex.unlock st.mu;
      Ok id
    end

  let get st id = st.bufs.(id)
  let owner st id = Atomic.get st.owners.(id)
  let regions st = Atomic.get st.n

  let in_range st id off len =
    id >= 0
    && id < Atomic.get st.n
    && off >= 0 && len >= 0
    && off + len <= st.b_lens.(id)

  let exec st (d : Copy_desc.t) =
    if d.op = Wellknown.bulk_copy then
      if in_range st d.src d.src_off d.len && in_range st d.dst d.dst_off d.len
      then begin
        Bytes.blit st.bufs.(d.src) d.src_off st.bufs.(d.dst) d.dst_off d.len;
        Errc.ok
      end
      else Errc.copy_fault
    else if d.op = Wellknown.bulk_grant then begin
      if not (in_range st d.src 0 0) then Errc.copy_fault
      else if Atomic.get st.owners.(d.src) <> d.client then Errc.copy_fault
      else begin
        (* Touch one byte per page of the region being handed over. *)
        let b = st.bufs.(d.src) and len = st.b_lens.(d.src) in
        let acc = ref 0 in
        let off = ref 0 in
        while !off < len do
          acc := !acc + Char.code (Bytes.unsafe_get b !off);
          off := !off + page
        done;
        st.touch <- st.touch + !acc;
        Atomic.set st.owners.(d.src) d.dst;
        Errc.ok
      end
    end
    else Errc.bad_request
end

(* Convenience: an engine whose descriptors execute over a fresh
   bounded region store. *)
let create_with_buffers ?max_clients ?max_regions () =
  let st = Buffers.create ?max_regions () in
  let eng = create ?max_clients (Buffers.exec st) in
  (eng, st)
