(** The engine's single consumer: a dedicated domain on the real
    substrate (parks on the engine doorbell when idle), or a manually
    stepped DMA device on the simulated substrate. *)

type t

val spawn : ?batch:int -> Copy_engine.t -> t
(** Dedicated mover domain; drains in batches of [batch] (default 32)
    per client per pass and parks when the rings run dry. *)

val manual : Copy_engine.t -> t
(** A mover that only runs when {!step}ped: the sim DMA device and the
    deterministic driver for the model tests. *)

val step : t -> budget:int -> int
(** Pump a {!manual} mover: execute up to [budget] descriptors now.
    Do not mix with a live spawned mover. *)

val shutdown : t -> unit
(** Quiesce: drain everything already submitted, then stop.  No
    descriptor is abandoned.  Joins the domain. *)

val kill : t -> unit
(** Fault injection: stop now, stranding in-flight descriptors.
    Returns only after the engine's [stopped] flag is visible, so the
    victims' next [reap] runs the fail sweep deterministically. *)
