(* Address-space regions and access grants (paper Section 4.2).

   Bulk data does not ride on the PPC itself: "a caller may give
   permission to the server to read and write selected portions of its
   address space", V-system style.  A grant names the owner program, the
   grantee program, a byte range in the owner's space, and the allowed
   direction(s).  The CopyServer validates every transfer against the
   grant table.

   The table is bounded, like every pool in the runtime: [try_grant]
   answers [Errc.retry] at the cap (PR5 backpressure taxonomy) instead
   of growing without limit.  For payloads big enough that copying is a
   waste, a grant can be consumed whole by [handoff]: ownership of the
   range moves to the grantee and the grant is revoked on completion —
   zero bytes cross, one table walk. *)

type access = Read_only | Write_only | Read_write

type grant = {
  grant_id : int;
  owner : Kernel.Program.id;
  grantee : Kernel.Program.id;
  base : int;
  len : int;
  access : access;
}

type t = {
  max_grants : int;
  mutable grants : grant list;
  mutable n_grants : int;
  mutable next_id : int;
  mutable revocations : int;
  mutable handoffs : int;
}

let default_max_grants = 256

let create ?(max_grants = default_max_grants) () =
  if max_grants <= 0 then invalid_arg "Region.create: max_grants must be > 0";
  { max_grants; grants = []; n_grants = 0; next_id = 1; revocations = 0;
    handoffs = 0 }

let try_grant t ~owner ~grantee ~base ~len ~access =
  if len <= 0 then invalid_arg "Region.try_grant: empty range";
  if t.n_grants >= t.max_grants then Error Ipc_intf.Errc.retry
  else begin
    let g = { grant_id = t.next_id; owner; grantee; base; len; access } in
    t.next_id <- t.next_id + 1;
    t.grants <- g :: t.grants;
    t.n_grants <- t.n_grants + 1;
    Ok g.grant_id
  end

let grant t ~owner ~grantee ~base ~len ~access =
  match try_grant t ~owner ~grantee ~base ~len ~access with
  | Ok id -> id
  | Error _ -> failwith "Region.grant: grant table full"

let revoke t ~grant_id =
  let before = t.n_grants in
  t.grants <- List.filter (fun g -> g.grant_id <> grant_id) t.grants;
  t.n_grants <- List.length t.grants;
  if t.n_grants < before then begin
    t.revocations <- t.revocations + 1;
    true
  end
  else false

let allows access dir =
  match (access, dir) with
  | (Read_only | Read_write), `Read -> true
  | (Write_only | Read_write), `Write -> true
  | Read_only, `Write | Write_only, `Read -> false

(* May [grantee] perform [dir] on [base,base+len) of [owner]'s space? *)
let check t ~owner ~grantee ~base ~len ~dir =
  List.exists
    (fun g ->
      g.owner = owner && g.grantee = grantee
      && allows g.access dir
      && base >= g.base
      && base + len <= g.base + g.len)
    t.grants

let find t ~grant_id = List.find_opt (fun g -> g.grant_id = grant_id) t.grants

(* The grant (if any) under which [grantee] may touch [owner]'s range. *)
let covering t ~owner ~grantee ~base ~len =
  List.find_opt
    (fun g ->
      g.owner = owner && g.grantee = grantee
      && base >= g.base
      && base + len <= g.base + g.len)
    t.grants

(* Consume a grant whole: ownership of the range transfers to the
   grantee and the grant is revoked on completion.  Returns the grant
   just consumed, or [None] if it does not exist (already handed off,
   revoked, or never made). *)
let handoff t ~grant_id =
  match find t ~grant_id with
  | None -> None
  | Some g ->
      ignore (revoke t ~grant_id);
      t.handoffs <- t.handoffs + 1;
      Some g

let active_grants t = t.n_grants
let max_grants t = t.max_grants
let revocations t = t.revocations
let handoffs t = t.handoffs
