(** The CopyServer: bulk data transfer as normal PPC requests, validated
    against region grants (Section 4.2).  Since the async bulk-data
    engine landed this is a thin compatibility shim: the handler
    validates grants in registers, then routes bytes through the engine
    as descriptors on a simulated DMA device pumped to completion before
    the PPC returns. *)

val op_copy_to : int
val op_copy_from : int

val op_copy_grant : int
(** Zero-copy: consume a covering grant whole — ownership of the range
    transfers to the caller, revoke-on-complete.  Length-unbounded. *)

val max_bytes_per_call : int
(** Per-call ceiling for CopyTo/CopyFrom; larger requests answer
    [Errc.too_big] (nothing moved — chunk and retry).  CopyGrant is
    exempt: no bytes cross. *)

type t

val install : Ppc.t -> t
(** Register the CopyServer as a kernel-level PPC server. *)

val regions : t -> Region.t
(** The grant table callers populate before transferring. *)

val engine : t -> Copy_engine.t
(** The bulk engine behind the shim (stats, instrumentation). *)

val ep_id : t -> int
val bytes_copied : t -> int
val denied : t -> int

val rejected_oversize : t -> int
(** CopyTo/CopyFrom requests rejected with [Errc.too_big]. *)

val handoffs : t -> int
val handoff_bytes : t -> int

val copy_to :
  t ->
  Ppc.t ->
  client:Kernel.Process.t ->
  peer:Kernel.Program.id ->
  src:int ->
  dst:int ->
  len:int ->
  int
(** Push [len] bytes from the caller's [src] into the peer's granted
    [dst]; returns the RC. *)

val copy_from :
  t ->
  Ppc.t ->
  client:Kernel.Process.t ->
  peer:Kernel.Program.id ->
  src:int ->
  dst:int ->
  len:int ->
  int

val grant_handoff :
  t ->
  Ppc.t ->
  client:Kernel.Process.t ->
  peer:Kernel.Program.id ->
  base:int ->
  len:int ->
  int
(** Take ownership of the peer's granted range \[[base], [base]+[len])
    without copying; the covering grant is revoked on completion. *)
