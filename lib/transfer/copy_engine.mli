(** Asynchronous bulk-data engine: per-client SPSC submission/completion
    rings over preallocated descriptor slabs, drained by one mover (see
    {!Mover}).  Implements the client face of {!Ipc_intf.Sigs.BULK}.

    The engine core is substrate-neutral — descriptor semantics come
    from an [exec] callback.  {!Buffers} supplies the real-substrate
    interpretation (bounded byte-region store, [Bytes.blit] copies,
    atomic ownership handoff); the simulator charges cycle costs through
    the [Copy_server] shim instead. *)

type exec = Copy_desc.t -> int
(** Executes one descriptor on the mover; returns its {!Ipc_intf.Errc}
    completion code.  A raise is contained to [Errc.copy_fault]. *)

type t
type client

val create : ?max_clients:int -> exec -> t

val connect :
  ?capacity:int -> ?on_complete:(tag:int -> rc:int -> unit) -> t -> client
(** New client with a [capacity]-descriptor slab (positive power of two,
    default 64) and rings of the same capacity — so a completion post
    can never fail.  [on_complete] runs from {!reap}, once per
    descriptor. *)

val set_on_complete : client -> (tag:int -> rc:int -> unit) -> unit

(** {1 Client side (single-owner, like an SPSC producer)} *)

val submit :
  client ->
  op:int ->
  src:int ->
  src_off:int ->
  dst:int ->
  dst_off:int ->
  len:int ->
  tag:int ->
  int
(** Stage one descriptor; does not ring the mover — batch with {!flush}.
    [Errc.retry] on slab/ring backpressure, [Errc.killed] after mover
    death, [Errc.ok] otherwise.  Allocates nothing. *)

val flush : client -> int
(** One doorbell kick covering everything staged since the last flush;
    returns how many descriptors the kick covers. *)

val reap : client -> int
(** Drain this client's completion ring, invoking [on_complete] per
    descriptor; never blocks.  After mover death, strands every
    in-flight descriptor into a completion with [Errc.handler_fault],
    exactly once each.  Returns completions delivered. *)

val outstanding : client -> int
val client_id : client -> int

type client_stats = {
  cs_submitted : int;
  cs_reaped : int;
  cs_rejected : int;  (** submit refused: slab/ring backpressure *)
  cs_failed_swept : int;  (** failed by the post-death sweep *)
}

val client_stats : client -> client_stats

(** {1 Mover side (single consumer — used by {!Mover})} *)

val doorbell : t -> Runtime.Doorbell.t
val pending : t -> int

val drain : t -> budget:int -> int
(** One pass: up to [budget] descriptors per client, round-robin.
    Returns descriptors executed.  Single-consumer only. *)

val request_kill : t -> unit
val request_quiesce : t -> unit
val killed : t -> bool
val quiescing : t -> bool
val mark_stopped : t -> unit
val stopped : t -> bool

type stats = {
  served : int;
  bytes_copied : int;
  grants_completed : int;
  copy_faults : int;
  doorbell_rings : int;
  doorbell_wakes : int;
  mover_parks : int;
}

val stats : t -> stats

(** {1 The runtime substrate's bounded region store} *)

module Buffers : sig
  type store

  val page : int

  val create : ?max_regions:int -> unit -> store

  val add : store -> owner:int -> Bytes.t -> (int, int) result
  (** Register a region; [Error Errc.retry] when the table is full
      (bounded-pool backpressure, never unbounded growth). *)

  val get : store -> int -> Bytes.t
  val owner : store -> int -> int
  val regions : store -> int

  val exec : store -> exec
  (** [bulk_copy]: range-checked [Bytes.blit].  [bulk_grant]: the
      submitting client must own [src]; ownership flips to the client
      named by [dst], after touching one byte per 4 KiB page (the
      stand-in for real map/remap cost).  Violations answer
      [Errc.copy_fault]. *)
end

val create_with_buffers :
  ?max_clients:int -> ?max_regions:int -> unit -> t * Buffers.store
