(* Million-client open-loop traffic study.

   A virtual population of logical clients (10^6 in the [full] config)
   drives a three-stage service graph with open-loop arrivals:

     name-server lookup  ->  file-service read  ->  CopyServer transfer

   Stage 1 resolves the copy service's entry point at the well-known
   name server (Section 4.5.5); stage 2 is Bob's GetLength on the
   arrival's home file (the Figure-3 workload); stage 3 pushes a
   bounded-Pareto payload through the CopyServer into a peer's granted
   region (Section 4.2).  The same schedule — identical seed, sampler
   and horizon, hence identical arrivals — also runs against the legacy
   message-passing IPC with matched service work, so the comparator
   isolates the transport.

   One scenario repeats the modern run under deterministic fault
   injection, in the faultsim idiom (faults fire as ordinary simulation
   events at planned times):

   - a flaky-service window: the file server's ACL revokes every lane's
     Read permission, then re-grants it — clients observe err_denied;
   - a shard kill mid-load: the CopyServer entry point is soft-killed
     and a replacement installed; until the controller rebinds the name,
     clients observe err_killed/err_no_entry and recover by re-looking
     the service up and retrying.

   Both windows reconcile by double-entry counting: the server-side
   injection counters (Auth denials, engine rejected calls) must equal
   the client-observed error counts exactly. *)

let svc_copy = "svc.copy"
let max_retries = 8
let retry_gap = Sim.Time.us 100

type config = {
  label : string;
  cpus : int;
  lanes : int;
  clients : int;  (** logical client population *)
  client_theta : float;  (** Zipf skew of per-client activity *)
  files : int;
  horizon : Sim.Time.t;
  warmup : Sim.Time.t;  (** management setup window before arrivals *)
  gap_mean_us : float;  (** per-lane exponential inter-arrival mean *)
  payload : Workload.Sampler.t;  (** copy-stage bytes *)
  curve_gaps_us : float list;  (** per-lane gap means for the load curve *)
  curve_horizon : Sim.Time.t;
  fault_horizon : Sim.Time.t;
  seed : int;
}

let payload_cap payload =
  match (payload : Workload.Sampler.t) with
  | Constant v -> int_of_float (Float.ceil v)
  | Exponential { mean } -> int_of_float (Float.ceil (20.0 *. mean))
  | Lognormal { mu; sigma } -> int_of_float (Float.ceil (exp (mu +. (6.0 *. sigma))))
  | Pareto { cap; _ } -> int_of_float (Float.ceil cap)

let default_payload = Workload.Sampler.Pareto { xm = 64.0; alpha = 1.3; cap = 4096.0 }

let slice =
  {
    label = "slice";
    cpus = 2;
    lanes = 2;
    clients = 5_000;
    client_theta = 0.9;
    files = 16;
    horizon = Sim.Time.ms 30;
    warmup = Sim.Time.us 500;
    gap_mean_us = 200.0;
    payload = default_payload;
    curve_gaps_us = [ 400.0; 120.0 ];
    curve_horizon = Sim.Time.ms 15;
    fault_horizon = Sim.Time.ms 30;
    seed = 420;
  }

let quick =
  {
    label = "quick";
    cpus = 4;
    lanes = 4;
    clients = 50_000;
    client_theta = 0.9;
    files = 64;
    horizon = Sim.Time.ms 200;
    warmup = Sim.Time.us 500;
    gap_mean_us = 240.0;
    payload = default_payload;
    curve_gaps_us = [ 960.0; 480.0; 240.0; 120.0 ];
    curve_horizon = Sim.Time.ms 60;
    fault_horizon = Sim.Time.ms 120;
    seed = 421;
  }

let full =
  {
    label = "full";
    cpus = 8;
    lanes = 8;
    clients = 1_000_000;
    client_theta = 0.9;
    files = 1_024;
    horizon = Sim.Time.s 31;
    warmup = Sim.Time.us 500;
    gap_mean_us = 240.0;  (* ~70% of a lane's modern-path capacity *)
    payload = default_payload;
    curve_gaps_us = [ 960.0; 480.0; 320.0; 240.0; 160.0; 120.0 ];
    curve_horizon = Sim.Time.ms 400;
    fault_horizon = Sim.Time.s 1;
    seed = 422;
  }

(* --- per-stage bookkeeping ------------------------------------------------ *)

type stage = {
  hist : Workload.Hist.t;
  mutable calls : int;
  mutable ok : int;
  mutable errs : int;
}

let new_stage () =
  { hist = Workload.Hist.create (); calls = 0; ok = 0; errs = 0 }

let note st ~from ~now ~ok =
  st.calls <- st.calls + 1;
  Workload.Hist.record st.hist (Sim.Time.sub now from);
  if ok then st.ok <- st.ok + 1 else st.errs <- st.errs + 1

type run_out = {
  run_label : string;
  transport : string;  (** "ppc" or "legacy-msg" *)
  offered_per_sec : float;
  achieved_per_sec : float;
  arrivals : int;
  completions : int;
  errors : int;
  max_backlog_us : float;
  e2e : Workload.Hist.t;  (** completion - scheduled arrival *)
  qdelay : Workload.Hist.t;  (** dispatch - scheduled arrival *)
  lookup : stage;
  file_read : stage;
  copy : stage;
}

type fault_tally = {
  injected_denials : int;  (** file-server ACL denials (server side) *)
  observed_denials : int;  (** client-observed err_denied *)
  injected_rejections : int;  (** engine rejected-call count (server side) *)
  observed_rejections : int;  (** client-observed err_killed/err_no_entry *)
  retried_ok : int;  (** arrivals recovered by re-lookup + retry *)
  failed_arrivals : int;
}

let reconciled f =
  f.injected_denials = f.observed_denials
  && f.injected_rejections = f.observed_rejections

type result = {
  cfg : config;
  modern : run_out;
  legacy : run_out;
  faulted : run_out;
  faults : fault_tally;
  curve : run_out list;
}

let offered_per_sec cfg ~gap_mean_us =
  float_of_int cfg.lanes *. 1.0e6 /. gap_mean_us

let run_out_of_counters cfg ~run_label ~transport ~gap_mean_us ~horizon
    ~(counters : Workload.Open_loop.counters) ~e2e ~qdelay ~lookup ~file_read
    ~copy =
  {
    run_label;
    transport;
    offered_per_sec = offered_per_sec cfg ~gap_mean_us;
    achieved_per_sec = Workload.Open_loop.achieved_per_sec counters ~horizon;
    arrivals = Workload.Open_loop.total_arrivals counters;
    completions = Workload.Open_loop.total_completions counters;
    errors = Workload.Open_loop.total_errors counters;
    max_backlog_us = Sim.Time.to_us counters.Workload.Open_loop.max_backlog;
    e2e;
    qdelay;
    lookup;
    file_read;
    copy;
  }

(* --- the modern (PPC) run ------------------------------------------------- *)

let run_modern cfg ~run_label ~gap_mean_us ~horizon ~faults =
  let kern = Kernel.create ~cpus:cfg.cpus () in
  let engine = Kernel.engine kern in
  let ppc = Ppc.create kern in
  let ns = Naming.Name_server.install ppc in
  let bob, fs_ep = Servers.File_server.install ppc in
  Ppc.prime ppc ~ep:fs_ep ~cpus:(List.init cfg.cpus Fun.id);
  for i = 0 to cfg.files - 1 do
    ignore
      (Servers.File_server.create_file bob ~file_id:i ~length:(64 + i)
         ~node:(i mod cfg.cpus))
  done;
  let cs0 = Transfer.Copy_server.install ppc in
  (* ep_id -> instance; the respawned shard is prepended on kill. *)
  let copy_servers = ref [ (Transfer.Copy_server.ep_id cs0, cs0) ] in
  let peer = Kernel.new_program kern ~name:"sink-peer" in
  let peer_id = Kernel.Program.id peer in
  let cap = payload_cap cfg.payload in
  let src = Array.init cfg.lanes (fun l ->
      Kernel.alloc kern ~bytes:cap ~node:(l mod cfg.cpus))
  in
  let dst = Array.init cfg.lanes (fun l ->
      Kernel.alloc kern ~bytes:cap ~node:(l mod cfg.cpus))
  in
  let lane_programs = Array.make cfg.lanes None in
  let grant_copy cs ~lane ~program_id =
    ignore
      (Transfer.Region.grant
         (Transfer.Copy_server.regions cs)
         ~owner:peer_id ~grantee:program_id ~base:dst.(lane) ~len:cap
         ~access:Transfer.Region.Write_only)
  in
  let pay_rng =
    Array.init cfg.lanes (fun l -> Sim.Rng.create ~seed:(cfg.seed + (31 * (l + 1))))
  in
  let e2e = Workload.Hist.create () in
  let qdelay = Workload.Hist.create () in
  let lookup = new_stage () in
  let file_read = new_stage () in
  let copy = new_stage () in
  let observed_denials = ref 0 in
  let observed_rejections = ref 0 in
  let retried_ok = ref 0 in
  let now () = Sim.Engine.now engine in
  let is_rejection rc =
    rc = Ppc.Reg_args.err_killed || rc = Ppc.Reg_args.err_no_entry
  in
  let do_lookup self =
    let t0 = now () in
    let res = Naming.Name_server.lookup ns ~client:self ~name:svc_copy in
    note lookup ~from:t0 ~now:(now ()) ~ok:(Result.is_ok res);
    res
  in
  let nap self =
    Kernel.Kcpu.sleep_until
      (Kernel.kcpu kern (Kernel.Process.cpu_index self))
      self
      ~wake:(Sim.Time.add (now ()) retry_gap)
  in
  (* A lookup that rides out the rebind outage: during a shard respawn
     the name is briefly unbound and the server answers err_no_entry —
     transient, unlike a denial.  Returns the retry count it spent. *)
  let rec lookup_stable self tries =
    match do_lookup self with
    | Ok ep -> Ok (ep, tries)
    | Error rc when rc = Ppc.Reg_args.err_no_entry && tries < max_retries ->
        nap self;
        lookup_stable self (tries + 1)
    | Error rc -> Error rc
  in
  let do_copy self ~lane ~len ~ep =
    let t0 = now () in
    let rc =
      match List.assoc_opt ep !copy_servers with
      | Some cs ->
          Transfer.Copy_server.copy_to cs ppc ~client:self ~peer:peer_id
            ~src:src.(lane) ~dst:dst.(lane) ~len
      | None -> Ppc.Reg_args.err_no_entry
    in
    note copy ~from:t0 ~now:(now ()) ~ok:(rc = Ppc.Reg_args.ok);
    rc
  in
  let body ~self (a : Workload.Open_loop.arrival) =
    match lookup_stable self 0 with
    | Error rc -> rc
    | Ok (copy_ep, pre_tries) -> (
        let t1 = now () in
        let res =
          Servers.File_server.get_length bob ~client:self
            ~file_id:(a.client mod cfg.files)
        in
        note file_read ~from:t1 ~now:(now ()) ~ok:(Result.is_ok res);
        match res with
        | Error rc ->
            if rc = Ppc.Reg_args.err_denied then incr observed_denials;
            rc
        | Ok _len ->
            let len =
              let f = Workload.Sampler.draw cfg.payload pay_rng.(a.lane) in
              min cap (max 1 (int_of_float f))
            in
            let rec attempt ep tries =
              let rc = do_copy self ~lane:a.lane ~len ~ep in
              if rc = Ppc.Reg_args.ok then begin
                if tries > 0 then incr retried_ok;
                0
              end
              else if is_rejection rc then begin
                incr observed_rejections;
                if tries >= max_retries then rc
                else begin
                  nap self;
                  match lookup_stable self (tries + 1) with
                  | Error rc' -> rc'
                  | Ok (ep', tries') -> attempt ep' tries'
                end
              end
              else rc
            in
            attempt copy_ep pre_tries)
  in
  let counters =
    Workload.Open_loop.run kern ~start:cfg.warmup ~lanes:cfg.lanes
      ~clients:cfg.clients ~client_theta:cfg.client_theta ~horizon
      ~seed:cfg.seed ~latency:e2e ~queue_delay:qdelay
      ~interarrival:(Workload.Sampler.Exponential { mean = gap_mean_us })
      ~prepare:(fun ~lane ~program ->
        lane_programs.(lane) <- Some program;
        Naming.Auth.grant
          (Servers.File_server.auth bob)
          ~program:(Kernel.Program.id program)
          ~perms:[ Naming.Auth.Read ];
        grant_copy cs0 ~lane ~program_id:(Kernel.Program.id program))
      ~body
  in
  (* The controller registers the service names inside the warmup window
     and, in the fault scenario, fires the two injection windows at their
     planned times. *)
  let ctl_prog = Kernel.new_program kern ~name:"controller" in
  let ctl_space = Kernel.new_user_space kern ~name:"controller" ~node:0 in
  let ctl_kc = Kernel.kcpu kern 0 in
  let each_lane_program f =
    Array.iteri
      (fun lane p -> match p with Some p -> f ~lane ~program_id:(Kernel.Program.id p) | None -> ())
      lane_programs
  in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"controller" ~kind:Kernel.Process.Client
       ~program:ctl_prog ~space:ctl_space (fun self ->
         let reg name ep_id =
           let rc = Naming.Name_server.register ns ~client:self ~name ~ep_id in
           if rc <> Ppc.Reg_args.ok then
             Fmt.failwith "traffic_study: register %s rc=%d" name rc
         in
         let delay_until t = Kernel.Kcpu.sleep_until ctl_kc self ~wake:t in
         reg "svc.file" (Servers.File_server.ep_id bob);
         reg svc_copy (Transfer.Copy_server.ep_id cs0);
         if faults then begin
           let quarter = Sim.Time.sub horizon cfg.warmup in
           let q t = Sim.Time.add cfg.warmup (t quarter) in
           (* flaky window: [1/4, 3/8) of the loaded span *)
           delay_until (q (fun s -> s / 4));
           each_lane_program (fun ~lane:_ ~program_id ->
               Naming.Auth.revoke (Servers.File_server.auth bob) ~program:program_id);
           delay_until (q (fun s -> s * 3 / 8));
           each_lane_program (fun ~lane:_ ~program_id ->
               Naming.Auth.grant (Servers.File_server.auth bob) ~program:program_id
                 ~perms:[ Naming.Auth.Read ]);
           (* shard kill at 1/2; rebind after a visible outage *)
           delay_until (q (fun s -> s / 2));
           Ppc.soft_kill ppc ~ep_id:(Transfer.Copy_server.ep_id cs0);
           let cs1 = Transfer.Copy_server.install ppc in
           copy_servers := (Transfer.Copy_server.ep_id cs1, cs1) :: !copy_servers;
           each_lane_program (fun ~lane ~program_id -> grant_copy cs1 ~lane ~program_id);
           delay_until (Sim.Time.add (now ()) (Sim.Time.us 300));
           let rc = Naming.Name_server.unregister ns ~client:self ~name:svc_copy in
           if rc <> Ppc.Reg_args.ok then
             Fmt.failwith "traffic_study: unregister rc=%d" rc;
           reg svc_copy (Transfer.Copy_server.ep_id cs1)
         end));
  Kernel.run kern;
  let out =
    run_out_of_counters cfg ~run_label ~transport:"ppc" ~gap_mean_us ~horizon
      ~counters ~e2e ~qdelay ~lookup ~file_read ~copy
  in
  let tally =
    {
      injected_denials = Naming.Auth.denials (Servers.File_server.auth bob);
      observed_denials = !observed_denials;
      injected_rejections = (Ppc.stats ppc).Ppc.Engine.rejected_calls;
      observed_rejections = !observed_rejections;
      retried_ok = !retried_ok;
      failed_arrivals = Workload.Open_loop.total_errors counters;
    }
  in
  (out, tally)

(* --- the legacy (message-passing) comparator ------------------------------ *)

(* Same arrival schedule (same seed, sampler, horizon), same three
   stages, matched service work — but every stage is a synchronous
   message through a locked shared port queue with memory-marshalled
   arguments and full context switches, and the copy stage pays the
   classic double copy through a kernel buffer. *)
let run_legacy cfg ~run_label ~gap_mean_us ~horizon =
  let kern = Kernel.create ~cpus:cfg.cpus () in
  let machine = Kernel.machine kern in
  let alloc ~bytes ~node = Kernel.alloc kern ~bytes ~node in
  let msg =
    Kernel.Msg_ipc.create ~engine:(Kernel.engine kern)
      ~kcpu_of:(Kernel.kcpu kern) ~alloc ()
  in
  let name_port = Kernel.Msg_ipc.make_port ~name:"name-port" ~node:0 ~alloc in
  let file_port = Kernel.Msg_ipc.make_port ~name:"file-port" ~node:0 ~alloc in
  let copy_port = Kernel.Msg_ipc.make_port ~name:"copy-port" ~node:0 ~alloc in
  let cap = payload_cap cfg.payload in
  let index_table = Kernel.alloc kern ~bytes:256 ~node:0 in
  let meta = Kernel.alloc kern ~bytes:64 ~node:0 in
  let kbuf = Kernel.alloc kern ~bytes:cap ~node:0 in
  let sink = Kernel.alloc kern ~bytes:cap ~node:0 in
  let serve_on port ~tag handler =
    for c = 0 to cfg.cpus - 1 do
      let name = Printf.sprintf "%s-%d" tag c in
      let program = Kernel.new_program kern ~name in
      let space = Kernel.new_user_space kern ~name ~node:c in
      ignore
        (Kernel.spawn kern ~cpu:c ~name ~kind:Kernel.Process.Client ~program
           ~space (fun self ->
             let cpu = Machine.cpu machine c in
             Kernel.Msg_ipc.serve msg port ~server:self (handler cpu)))
    done
  in
  (* name service: hash compare over the binding list *)
  serve_on name_port ~tag:"name-srv" (fun cpu args ->
      Machine.Cpu.instr cpu 80;
      Machine.Cpu.load_words cpu index_table 4;
      args);
  (* file service: File_server.default_profile's work, without the PPC *)
  let p = Servers.File_server.default_profile in
  serve_on file_port ~tag:"file-srv" (fun cpu args ->
      Machine.Cpu.instr cpu (p.path_instr + p.lock_hold_instr);
      Machine.Cpu.load_words cpu index_table p.index_loads;
      for _ = 1 to p.meta_accesses do
        Machine.Cpu.uncached_load cpu meta
      done;
      args);
  (* copy service: double copy through the kernel buffer *)
  serve_on copy_port ~tag:"copy-srv" (fun cpu args ->
      let len = args.(1) in
      let words = (len + 3) / 4 in
      Machine.Cpu.instr cpu 60;
      Machine.Cpu.load_words cpu sink words;
      Machine.Cpu.store_words cpu kbuf words;
      Machine.Cpu.load_words cpu kbuf words;
      Machine.Cpu.store_words cpu sink words;
      args);
  let pay_rng =
    Array.init cfg.lanes (fun l -> Sim.Rng.create ~seed:(cfg.seed + (31 * (l + 1))))
  in
  let e2e = Workload.Hist.create () in
  let qdelay = Workload.Hist.create () in
  let lookup = new_stage () in
  let file_read = new_stage () in
  let copy = new_stage () in
  let engine = Kernel.engine kern in
  let now () = Sim.Engine.now engine in
  let body ~self (a : Workload.Open_loop.arrival) =
    let t0 = now () in
    ignore (Kernel.Msg_ipc.send msg name_port ~client:self [| 2; a.client |]);
    note lookup ~from:t0 ~now:(now ()) ~ok:true;
    let t1 = now () in
    ignore
      (Kernel.Msg_ipc.send msg file_port ~client:self
         [| 2; a.client mod cfg.files |]);
    note file_read ~from:t1 ~now:(now ()) ~ok:true;
    let len =
      let f = Workload.Sampler.draw cfg.payload pay_rng.(a.lane) in
      min cap (max 1 (int_of_float f))
    in
    let t2 = now () in
    ignore (Kernel.Msg_ipc.send msg copy_port ~client:self [| 1; len |]);
    note copy ~from:t2 ~now:(now ()) ~ok:true;
    0
  in
  let counters =
    Workload.Open_loop.run kern ~start:cfg.warmup ~lanes:cfg.lanes
      ~clients:cfg.clients ~client_theta:cfg.client_theta ~horizon
      ~seed:cfg.seed ~latency:e2e ~queue_delay:qdelay
      ~interarrival:(Workload.Sampler.Exponential { mean = gap_mean_us })
      ~body
  in
  Kernel.run kern;
  run_out_of_counters cfg ~run_label ~transport:"legacy-msg" ~gap_mean_us
    ~horizon ~counters ~e2e ~qdelay ~lookup ~file_read ~copy

(* --- whole study ---------------------------------------------------------- *)

let run ?(cfg = quick) () =
  let modern, _ =
    run_modern cfg ~run_label:"steady load" ~gap_mean_us:cfg.gap_mean_us
      ~horizon:cfg.horizon ~faults:false
  in
  let legacy =
    run_legacy cfg ~run_label:"steady load" ~gap_mean_us:cfg.gap_mean_us
      ~horizon:cfg.horizon
  in
  let faulted, faults =
    run_modern cfg ~run_label:"fault injection" ~gap_mean_us:cfg.gap_mean_us
      ~horizon:cfg.fault_horizon ~faults:true
  in
  let curve =
    List.map
      (fun gap ->
        fst
          (run_modern cfg
             ~run_label:(Printf.sprintf "curve gap=%gus" gap)
             ~gap_mean_us:gap ~horizon:cfg.curve_horizon ~faults:false))
      cfg.curve_gaps_us
  in
  { cfg; modern; legacy; faulted; faults; curve }

(* --- report --------------------------------------------------------------- *)

let stage_row name (st : stage) =
  Workload.Report.stage_row ~stage:name ~arrivals:st.calls ~ok:st.ok
    ~errors:st.errs ~hist:st.hist

let run_section (r : run_out) =
  {
    Workload.Report.label = r.run_label;
    transport = r.transport;
    offered_per_sec = r.offered_per_sec;
    achieved_per_sec = r.achieved_per_sec;
    arrivals = r.arrivals;
    completions = r.completions;
    run_errors = r.errors;
    max_backlog_us = r.max_backlog_us;
    stages =
      [
        stage_row "lookup" r.lookup;
        stage_row "file-read" r.file_read;
        stage_row "copy" r.copy;
      ];
    end_to_end =
      Workload.Report.stage_row ~stage:"end-to-end" ~arrivals:r.arrivals
        ~ok:r.completions ~errors:r.errors ~hist:r.e2e;
  }

let comparator_metrics modern legacy =
  let q h p = float_of_int (Workload.Hist.quantile h p) /. 1000.0 in
  [
    ("achieved throughput (/s)", modern.achieved_per_sec, legacy.achieved_per_sec);
    ( "end-to-end mean (us)",
      Workload.Hist.mean modern.e2e /. 1000.0,
      Workload.Hist.mean legacy.e2e /. 1000.0 );
    ("end-to-end p50 (us)", q modern.e2e 0.5, q legacy.e2e 0.5);
    ("end-to-end p99 (us)", q modern.e2e 0.99, q legacy.e2e 0.99);
    ("end-to-end p999 (us)", q modern.e2e 0.999, q legacy.e2e 0.999);
  ]

let report r =
  let cfg = r.cfg in
  let curve_point (o : run_out) =
    {
      Workload.Report.offered_per_sec = o.offered_per_sec;
      achieved_per_sec = o.achieved_per_sec;
      p50_us = float_of_int (Workload.Hist.p50 o.e2e) /. 1000.0;
      p99_us = float_of_int (Workload.Hist.p99 o.e2e) /. 1000.0;
      p999_us = float_of_int (Workload.Hist.p999 o.e2e) /. 1000.0;
    }
  in
  let checks =
    [
      {
        Workload.Report.check = "file-stage ACL denials (flaky window)";
        injected = r.faults.injected_denials;
        observed = r.faults.observed_denials;
      };
      {
        Workload.Report.check = "copy-stage EP rejections (shard kill)";
        injected = r.faults.injected_rejections;
        observed = r.faults.observed_rejections;
      };
    ]
  in
  {
    Workload.Report.title =
      Printf.sprintf "Open-loop traffic study (%s): %d logical clients, %d lanes"
        cfg.label cfg.clients cfg.lanes;
    scenario =
      [
        Printf.sprintf
          "Three-stage graph per arrival: name-server lookup -> file-service \
           read (%d files) -> CopyServer transfer (payload %s bytes)."
          cfg.files
          (Workload.Sampler.name cfg.payload);
        Printf.sprintf
          "Arrivals are open loop: %d lanes, per-lane exponential gaps of \
           mean %g us, client picked Zipf(theta=%g) over %d logical clients; \
           the schedule is independent of completions."
          cfg.lanes cfg.gap_mean_us cfg.client_theta cfg.clients;
        Printf.sprintf
          "Horizon %.0f ms simulated (+%.0f us warmup); seed %d; latency \
           measured from the scheduled arrival, so queueing in a backlogged \
           lane counts."
          (Sim.Time.to_ms cfg.horizon)
          (Sim.Time.to_us cfg.warmup)
          cfg.seed;
      ];
    runs =
      [ run_section r.modern; run_section r.legacy; run_section r.faulted ];
    curve = List.map curve_point r.curve;
    comparator = comparator_metrics r.modern r.legacy;
    faults =
      Some
        {
          Workload.Report.checks;
          retried_ok = r.faults.retried_ok;
          failed_arrivals = r.faults.failed_arrivals;
          reconciled = Workload.Report.reconcile checks;
        };
  }

let pp_result ppf r =
  Fmt.string ppf (Workload.Report.to_markdown (report r))
