(* Bulk-payload sweep: the paper's Section 4.2 bulk-data story taken to
   modern sizes.

   Three ways to move [size] bytes from a client to a peer, each timed
   on a fresh simulated machine:

   - {b register-chunk}: the payload rides the 8-register PPC block
     itself, 6 data words (24 bytes) per call — the control-plane path
     misused for bulk data.  Cost scales with ceil(size/24) full PPCs.
   - {b engine-copy}: CopyServer transfers through the async engine in
     [max_bytes_per_call] chunks, paying cached word-at-a-time memory
     traffic but only ceil(size/64K) PPCs.
   - {b grant-handoff}: the peer's covering grant is consumed whole —
     ownership moves, zero bytes cross, cost is one PPC plus a
     page-walk per 4 KiB.

   The sweep locates the two crossover points (where engine-copy first
   beats register-chunk, and where grant-handoff first beats
   engine-copy).  Everything is deterministic simulated time, so the
   numbers are CI-diffable. *)

type point = {
  size : int;
  register_us : float;
  engine_us : float;
  grant_us : float;
}

type result = {
  points : point list;
  reg_engine_crossover : int option;
      (** smallest swept size where engine-copy beats register-chunk *)
  engine_grant_crossover : int option;
      (** smallest swept size where grant-handoff beats engine-copy *)
}

let default_sizes =
  [ 16; 32; 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576 ]

let spawn_client kern ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name ~kind:Kernel.Process.Client ~program ~space
       body)

(* (a) payload in the registers: 6 data words per call to an ingest
   server that stores them. *)
let run_register ~size =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let sink = Kernel.alloc kern ~bytes:64 ~node:0 in
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    Machine.Cpu.instr ~code:ctx.Ppc.Call_ctx.server_code ctx.Ppc.Call_ctx.cpu 40;
    Ppc.Null_server.touch_stack ctx ~words:6;
    for i = 0 to 5 do
      ignore (Ppc.Reg_args.get args i);
      Machine.Cpu.store ctx.Ppc.Call_ctx.cpu (sink + (4 * i))
    done;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_kernel_server ppc ~name:"ingest" () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  let ep_id = Ppc.Entry_point.id ep in
  let elapsed = ref 0.0 in
  spawn_client kern ~name:"reg-sender" (fun self ->
      let t0 = Kernel.now kern in
      let calls = (size + 23) / 24 in
      let args = Ppc.Reg_args.make () in
      for _ = 1 to calls do
        ignore
          (Ppc.call ppc ~client:self
             ~opflags:(Ppc.Reg_args.op_flags ~op:1 ~flags:0)
             ~ep_id args)
      done;
      elapsed := Sim.Time.to_us (Kernel.now kern) -. Sim.Time.to_us t0);
  Kernel.run kern;
  !elapsed

let copy_setup () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let cs = Transfer.Copy_server.install ppc in
  (kern, ppc, cs)

(* (b) engine copy, chunked at the per-call ceiling. *)
let run_engine ~size =
  let kern, ppc, cs = copy_setup () in
  let peer = Kernel.new_program kern ~name:"peer" in
  let peer_id = Kernel.Program.id peer in
  let src = Kernel.alloc kern ~bytes:size ~node:0 in
  let dst = Kernel.alloc kern ~bytes:size ~node:0 in
  let elapsed = ref 0.0 in
  spawn_client kern ~name:"eng-sender" (fun self ->
      let me = Kernel.Program.id (Kernel.Process.program self) in
      ignore
        (Transfer.Region.grant
           (Transfer.Copy_server.regions cs)
           ~owner:peer_id ~grantee:me ~base:dst ~len:size
           ~access:Transfer.Region.Write_only);
      let t0 = Kernel.now kern in
      let chunk = Transfer.Copy_server.max_bytes_per_call in
      let off = ref 0 in
      while !off < size do
        let n = min chunk (size - !off) in
        let rc =
          Transfer.Copy_server.copy_to cs ppc ~client:self ~peer:peer_id
            ~src:(src + !off) ~dst:(dst + !off) ~len:n
        in
        if rc <> Ppc.Reg_args.ok then Fmt.failwith "copy_to rc=%d" rc;
        off := !off + n
      done;
      elapsed := Sim.Time.to_us (Kernel.now kern) -. Sim.Time.to_us t0);
  Kernel.run kern;
  !elapsed

(* (c) consume the covering grant whole: zero bytes cross. *)
let run_grant ~size =
  let kern, ppc, cs = copy_setup () in
  let peer = Kernel.new_program kern ~name:"peer" in
  let peer_id = Kernel.Program.id peer in
  let base = Kernel.alloc kern ~bytes:size ~node:0 in
  let elapsed = ref 0.0 in
  spawn_client kern ~name:"grant-taker" (fun self ->
      let me = Kernel.Program.id (Kernel.Process.program self) in
      ignore
        (Transfer.Region.grant
           (Transfer.Copy_server.regions cs)
           ~owner:peer_id ~grantee:me ~base ~len:size
           ~access:Transfer.Region.Read_write);
      let t0 = Kernel.now kern in
      let rc =
        Transfer.Copy_server.grant_handoff cs ppc ~client:self ~peer:peer_id
          ~base ~len:size
      in
      if rc <> Ppc.Reg_args.ok then Fmt.failwith "grant_handoff rc=%d" rc;
      elapsed := Sim.Time.to_us (Kernel.now kern) -. Sim.Time.to_us t0);
  Kernel.run kern;
  !elapsed

let crossover points ~better ~than =
  List.find_map
    (fun p -> if better p < than p then Some p.size else None)
    points

let run ?(sizes = default_sizes) () =
  let points =
    List.map
      (fun size ->
        {
          size;
          register_us = run_register ~size;
          engine_us = run_engine ~size;
          grant_us = run_grant ~size;
        })
      sizes
  in
  {
    points;
    reg_engine_crossover =
      crossover points ~better:(fun p -> p.engine_us) ~than:(fun p -> p.register_us);
    engine_grant_crossover =
      crossover points ~better:(fun p -> p.grant_us) ~than:(fun p -> p.engine_us);
  }

let pp_result ppf r =
  Fmt.pf ppf "Bulk-payload sweep (simulated, us to move N bytes)@.";
  Fmt.pf ppf "  %10s %12s %12s %12s@." "bytes" "register" "engine" "grant";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %10d %12.1f %12.1f %12.1f@." p.size p.register_us
        p.engine_us p.grant_us)
    r.points;
  (match r.reg_engine_crossover with
  | Some s -> Fmt.pf ppf "  engine-copy beats register-chunk from %d bytes@." s
  | None -> Fmt.pf ppf "  engine-copy never beats register-chunk in this sweep@.");
  match r.engine_grant_crossover with
  | Some s -> Fmt.pf ppf "  grant-handoff beats engine-copy from %d bytes@." s
  | None -> Fmt.pf ppf "  grant-handoff never beats engine-copy in this sweep@."
