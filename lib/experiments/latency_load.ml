(* L1: GetLength latency under offered load.

   The throughput plots hide queueing: here closed-loop clients on every
   CPU issue requests with exponential think times (each client waits
   for its previous call before thinking about the next — a think-time
   closed loop, not an open-loop schedule; see Workload.Open_loop for
   that), and we record each call's round-trip latency.  For different files the distribution stays
   flat as load rises; for a single file the lock queue inflates the tail
   well before throughput saturates — the latency-side view of Figure 3's
   story. *)

type point = {
  think_us : float;
  offered_per_sec : float;
  achieved_per_sec : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

type mode = Different_files | Single_file

let mode_name = function
  | Different_files -> "different files"
  | Single_file -> "single file"

let run_point ~cpus ~horizon ~mode ~think_us =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let bob, ep = Servers.File_server.install ppc in
  Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
  (match mode with
  | Different_files ->
      for i = 0 to cpus - 1 do
        ignore (Servers.File_server.create_file bob ~file_id:i ~length:10 ~node:i)
      done
  | Single_file ->
      ignore (Servers.File_server.create_file bob ~file_id:0 ~length:10 ~node:0));
  let stats = Sim.Stats.create () in
  let specs =
    List.init cpus (fun cpu ->
        {
          Workload.Driver.cpu;
          name = Printf.sprintf "client-%d" cpu;
          think_mean_us = Some think_us;
          identity = None;
        })
  in
  let counters =
    Workload.Driver.run kern ~specs ~horizon ~seed:21
      ~prepare:(fun ~program ~index:_ ->
        Naming.Auth.grant (Servers.File_server.auth bob)
          ~program:(Kernel.Program.id program)
          ~perms:[ Naming.Auth.Read ])
      ~body:(fun ~client ~iteration:_ ->
        let file_id =
          match mode with
          | Different_files -> Kernel.Process.cpu_index client
          | Single_file -> 0
        in
        let t0 = Kernel.now kern in
        (match Servers.File_server.get_length bob ~client ~file_id with
        | Ok _ -> ()
        | Error rc -> Fmt.failwith "GetLength failed rc=%d" rc);
        Sim.Stats.add stats (Sim.Time.to_us (Sim.Time.sub (Kernel.now kern) t0)))
  in
  Kernel.run kern;
  let achieved = Workload.Driver.throughput_per_sec counters in
  {
    think_us;
    (* Offered load if calls were instantaneous. *)
    offered_per_sec = float_of_int cpus *. 1.0e6 /. think_us;
    achieved_per_sec = achieved;
    mean_us = Sim.Stats.mean stats;
    p50_us = Sim.Stats.median stats;
    p99_us = Sim.Stats.percentile stats 99.0;
  }

let run ?(cpus = 8) ?(horizon = Sim.Time.ms 60)
    ?(thinks = [ 1000.0; 400.0; 150.0; 60.0; 25.0 ]) ~mode () =
  List.map (fun think_us -> run_point ~cpus ~horizon ~mode ~think_us) thinks

let pp_result ppf (mode, points) =
  Fmt.pf ppf
    "L1 — GetLength latency under load (%s, 8 CPUs, closed loop w/ think)@."
    (mode_name mode);
  Fmt.pf ppf "  think(us)   offered/s   achieved/s   mean(us)   p50    p99@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %8.0f   %9.0f   %10.0f   %8.1f %6.1f %6.1f@." p.think_us
        p.offered_per_sec p.achieved_per_sec p.mean_us p.p50_us p.p99_us)
    points
