(** The channel call path re-hosted on a {!Segment}: request cells,
    SPSC rings, doorbell, lifecycle and heartbeat words all live at
    {!Ipc_intf.Wire_abi} offsets, so the same protocol runs in-heap
    (tests, baselines) and over an mmap'd file shared by two OS
    processes — genuinely cross-protection-domain PPC.

    One segment pairs one server with one client; each side holds a [t]
    with its own role.  The warm submit/await path allocates nothing.
    Crash containment extends to whole-process death — in both
    directions: a frozen peer heartbeat triggers a pid probe, and a
    confirmed death fails every in-flight call with
    [Ipc_intf.Errc.handler_fault] and recycles every cell exactly once
    (CAS-arbitrated per cell).  A server that outlives its client
    {!release_session}s the segment for a successor; a client that
    outlives its server detects the supervisor's in-place
    {!regenerate} through the generation seqlock and fails closed with
    [Errc.stale_generation] until it reattaches ({!Shm_session}
    automates that). *)

type t
type role = Server | Client

exception Bad_segment of string
(** Raised on attach when the magic, ABI version or construction
    seqlock disqualify the segment. *)

(** {1 Construction} *)

val total_words : capacity:int -> arg_words:int -> int
(** Segment size for a given geometry (see Wire_abi's layout table). *)

val layout : ?capacity:int -> ?arg_words:int -> Segment.t -> unit
(** Lay a segment out (header under the generation seqlock, empty
    rings, free cells).  [capacity] (default 64) must be a positive
    power of two; defaults to 8 [arg_words].  Generations are monotonic
    across rebuilds: a zeroed segment opens at 2, each rebuild adds 2.
    @raise Invalid_argument otherwise, or if the segment is too small. *)

val regenerate : Segment.t -> unit
(** Rebuild an existing segment in place under the generation seqlock,
    keeping the geometry recorded in its header.  For a supervisor
    replacing a dead server.  Never truncates or remaps: survivors with
    stale mappings read the bumped generation and fail closed with
    [Errc.stale_generation] rather than fault.
    @raise Bad_segment if the magic word is missing. *)

val create_heap : ?capacity:int -> ?arg_words:int -> unit -> Segment.t
(** An in-process segment, laid out and ready to attach both roles. *)

val create_file :
  path:string -> ?capacity:int -> ?arg_words:int -> unit -> Segment.t
(** Create, size and lay out a segment file (the creator need not be
    either endpoint — fork after this and attach from both sides). *)

val attach :
  ?spin:int -> ?probe_window_ns:int -> role:role -> Segment.t -> t
(** Join a laid-out segment in [role]: validates the header, records
    this pid, publishes readiness.  [spin] is the cpu-relax budget
    before a wait starts yielding (default 2048, or 16 on a single-CPU
    box where spinning only burns the peer's timeslice);
    [probe_window_ns] how long the peer's heartbeat may freeze before
    the pid probe runs (default 50 ms).
    @raise Bad_segment also when the role's pid slot is held by another
    live-or-unreleased process — one endpoint per role per segment;
    wait for the release/regeneration and retry. *)

val attach_file :
  ?spin:int ->
  ?probe_window_ns:int ->
  ?timeout_ns:int ->
  ?after_generation:int ->
  role:role ->
  string ->
  t
(** Map and attach an existing segment file, waiting (bounded by
    [timeout_ns], default 5 s) for the creator's seqlock to open.
    [after_generation] (default 0) additionally waits for a generation
    strictly beyond it — a reattaching client passes the generation it
    fled so it cannot re-latch onto the same stale build.
    @raise Bad_segment if nothing valid appears in time. *)

val segment : t -> Segment.t
val capacity : t -> int
val arg_words : t -> int

val generation : t -> int
(** The segment generation this endpoint attached under. *)

val stale : t -> bool
(** The segment was rebuilt after this endpoint attached: every
    operation on [t] now fails closed with [Errc.stale_generation]. *)

(** {1 Client side} *)

val submit : t -> ep:int -> int array -> (int, int) result
(** Stage a call: acquire a cell, write the entry-point word and
    arguments, publish through the submission ring, ring the doorbell.
    [Ok cell] to {!await} on; [Error Errc.retry] when every cell is in
    flight, [Error Errc.peer_dead] once the peer is known dead,
    [Error Errc.stale_generation] once the segment was rebuilt under
    this mapping (the [t] is defunct — reattach). *)

val submit_raw : t -> ep:int -> int array -> int
(** {!submit} without the result box: a cell index [>= 0] to {!await}
    on, or a negative [Errc] code.  This is the warm path {!call} rides;
    allocation-free. *)

val await : ?deadline:int -> t -> int -> int array -> int
(** Wait for a submitted cell, copy the reply into the array, recycle
    the cell; returns the RC slot.  [deadline] is absolute
    CLOCK_MONOTONIC ns: on expiry the cell is abandoned to the server
    (Pending->Abandoned CAS handoff; it comes back through the reclaim
    ring) and the call answers [Errc.timed_out].  Peer death answers
    [Errc.handler_fault]; a regeneration mid-wait answers
    [Errc.stale_generation] (the cell died with the old session — do
    not reuse this [t]).  Spin -> yield -> nap; allocation-free. *)

val call : t -> ep:int -> int array -> int
(** [submit] + [await]. *)

val call_deadline : t -> ep:int -> deadline:int -> int array -> int

val announce_shutdown : t -> unit
(** Tell the peer this side is done; a serving loop exits once its ring
    is dry. *)

(** {1 Server side} *)

type dispatch = ep_word:int -> int array -> int
(** Run one decoded request; mutates the array in place and returns the
    RC.  Exceptions are contained to [Errc.handler_fault]. *)

val serve_once : t -> dispatch:dispatch -> int
(** Drain the submission ring once; returns requests served.  Recycles
    cells abandoned mid-flight exactly once (CAS-arbitrated). *)

val serve : t -> dispatch:dispatch -> int
(** The server loop: drain, park in growing naps when dry, exit on the
    client's shutdown announcement, its confirmed death (after
    reclaiming its cells), or a regeneration underneath this server
    (fail closed).  Returns total requests served. *)

val release_session : t -> unit
(** After a confirmed client death: sweep exactly once, then rebuild
    rings, cells and the client words under the generation seqlock so
    a successor client can attach to the same segment.  Bumps the
    sessions-released counter; the server's [t] follows the new
    generation.  Server only.
    @raise Invalid_argument from a client-role [t]. *)

val serve_sessions : ?on_release:(unit -> unit) -> t -> dispatch:dispatch -> int
(** Like {!serve}, but a dead client's session is swept, released and
    the loop keeps serving for the next client ([on_release] fires once
    per release).  Exits on a clean client shutdown or on regeneration
    underneath.  Returns total requests served.  Server only. *)

val fastcall_dispatch : ?principal:int -> Fastcall.t -> Control.t -> dispatch
(** A dispatcher over a Fastcall table and its control plane: versioned
    wire handles and raw-ID calls reach the table, [Wire_abi.ctl_ep]
    carries the management vocabulary (register-by-spec, publish,
    lookup, exchange, kills, in-flight) — everything the cross-process
    conformance subject needs. *)

(** {1 Peer liveness} *)

val wait_peer_ready : ?timeout_ns:int -> t -> bool
val peer_ready : t -> bool
val peer_pid : t -> int

val peer_dead : t -> bool
(** The verdict this side has reached (sticky). *)

val probe_peer : t -> bool
(** One probe step: heartbeat freshness, then (past the probe window) a
    pid probe.  Returns {!peer_dead}.  Wait loops call this
    automatically. *)

val sweep_dead_peer : t -> int
(** Fail/reclaim every cell a dead peer held: pending cells complete
    with [Errc.handler_fault] for their awaiter, abandoned cells return
    to the free stack.  CAS-arbitrated per cell, so repeated sweeps (or
    sweep racing await) recycle each cell exactly once.  Returns cells
    swept by this invocation. *)

(** {1 Observability} *)

val free_cells : t -> int
(** Cells on the client free stack (after draining the reclaim ring). *)

val in_flight : t -> int
val swept : t -> int
val timeouts : t -> int
val submitted : t -> int
val served : t -> int
val batches : t -> int
val doorbell_rings : t -> int
val reclaimed : t -> int
val peer_faults : t -> int

val sessions_released : t -> int
(** Sessions the server has released after confirmed client deaths
    (cumulative across the segment's lifetime — the chaos harness
    reconciles this against injected client kills by double entry). *)
