(* The channel call path re-hosted on a Segment: Request_slab cells,
   Spsc_ring.Raw head/tail/slots, the doorbell word and the lifecycle /
   heartbeat words all become offsets computed from Ipc_intf.Wire_abi —
   so the identical protocol runs over an in-heap word array (tests,
   single-process baselines) and over an mmap'd file shared by two OS
   processes (true cross-protection-domain PPC, the paper's call path
   with the protection boundary finally real).

   Roles.  A segment hosts exactly one server and one client, each
   represented by a [t] in its own process (or domain).  The client
   owns the submission ring's tail, the free stack and every cell not
   in flight; the server owns the submission ring's head and the
   reclaim ring's tail.  All waits are spin -> yield -> nap loops on
   segment words: processes cannot share condvars, so the Doorbell
   PARKED protocol degenerates to timed naps (the nap cap bounds wakeup
   latency the same way it bounds deadline overshoot in-process).

   Crash containment across whole-process death.  Each side bumps its
   heartbeat word continuously; a waiter whose peer's heartbeat stays
   frozen across [probe_window_ns] probes the recorded pid with
   kill(pid, 0) (zombies count as alive — reap your forks).  On a
   confirmed death the survivor sweeps the segment exactly once per
   cell, arbitrated by CAS on the cell state word:

     pending   -CAS-> done + rc := handler_fault   (in-flight call fails)
     abandoned -CAS-> free                          (stranded timed-out cell)

   so every in-flight call observes [Errc.handler_fault], every cell
   returns to the free stack exactly once, and submissions after the
   verdict answer [Errc.peer_dead].  This is the Request_slab §4.5.6
   reclamation contract, extended from "server shard died" to "the
   entire peer process is gone".

   Session recovery.  Death containment is bidirectional and the
   segment outlives both endpoints.  A server that finds its client
   dead sweeps and then *releases the session* ([release_session]):
   rings, cells and the client words are rebuilt under the generation
   seqlock so a fresh client can attach to the same segment — the
   [serve_sessions] loop does this and keeps serving.  A server that
   dies is replaced by [Proc_supervisor]: the supervisor regenerates
   the whole segment in place ([regenerate], same seqlock, never a
   truncate — shrinking a mapped file would SIGBUS survivors), and a
   surviving client notices the generation it recorded at attach no
   longer matches the live word.  Every client-facing operation fails
   closed with [Errc.stale_generation] on that mismatch; the channel
   value is then defunct and the owner reattaches via [attach_file]
   (Shm_session automates this, retrying the interrupted call under
   Backoff so callers see at most [Errc.retry], never a hang). *)

module W = Ipc_intf.Wire_abi
module Errc = Ipc_intf.Errc

type role = Server | Client

type t = {
  seg : Segment.t;
  role : role;
  capacity : int;
  arg_words : int;
  rc_slot : int;
  cell_words : int;
  cells_base : int;
  spin : int;  (* cpu-relax budget before yielding *)
  probe_window_ns : int;
  mutable gen : int;
  (* the segment generation this endpoint attached under; a live value
     that differs means the segment was rebuilt and this [t] is defunct *)
  (* client: free stack of cell indices; unused by the server *)
  free : int array;
  mutable free_len : int;
  mutable hb : int;  (* local heartbeat counter, mirrored to the segment *)
  mutable peer_dead : bool;
  mutable swept : int;  (* in-flight calls this side failed on peer death *)
  mutable timeouts : int;
  mutable submitted : int;
  mutable served : int;
  mutable batches : int;
  (* liveness probe state *)
  mutable peer_hb_seen : int;
  mutable peer_hb_changed_ns : int;
  scratch : int array;  (* server-side argument staging *)
}

(* --- layout helpers -------------------------------------------------------- *)

let cell_state t i = t.cells_base + (i * t.cell_words)
let cell_ep t i = t.cells_base + (i * t.cell_words) + 1
let cell_arg t i j = t.cells_base + (i * t.cell_words) + 2 + j

let my_hb_off t =
  match t.role with
  | Server -> W.off_server_heartbeat
  | Client -> W.off_client_heartbeat

let peer_hb_off t =
  match t.role with
  | Server -> W.off_client_heartbeat
  | Client -> W.off_server_heartbeat

let peer_pid_off t =
  match t.role with Server -> W.off_client_pid | Client -> W.off_server_pid

let my_state_off t =
  match t.role with Server -> W.off_server_state | Client -> W.off_client_state

let peer_state_off t =
  match t.role with Server -> W.off_client_state | Client -> W.off_server_state

let bump_heartbeat t =
  t.hb <- t.hb + 1;
  Segment.set t.seg (my_hb_off t) t.hb

(* --- construction ---------------------------------------------------------- *)

let total_words ~capacity ~arg_words = W.total_words ~capacity ~arg_words

(* Lay a segment out under the generation seqlock.  The creator need
   not be either endpoint — in the forked demo the parent lays the
   segment out before forking the server.  Generations are monotonic
   across rebuilds of the same words: a fresh (zeroed) segment goes
   0 -> 1 -> 2, a regeneration 2 -> 3 -> 4, and a builder that died at
   an odd value is skipped past, so no two builds share a generation
   and an attacher can always order them. *)
let layout ?(capacity = 64) ?(arg_words = 8) seg =
  if capacity <= 0 || capacity land (capacity - 1) <> 0 then
    invalid_arg
      (Printf.sprintf
         "Shm_channel.layout: capacity must be a positive power of two (got %d)"
         capacity);
  if arg_words <= 0 then
    invalid_arg "Shm_channel.layout: arg_words must be > 0";
  let words = total_words ~capacity ~arg_words in
  if Segment.length seg < words then
    invalid_arg
      (Printf.sprintf "Shm_channel.layout: segment holds %d words, need %d"
         (Segment.length seg) words);
  let g = Segment.get seg W.off_generation in
  let building = if g land 1 = 1 then g + 2 else g + 1 in
  Segment.set seg W.off_generation building (* odd: under construction *);
  Segment.set seg W.off_magic W.magic;
  Segment.set seg W.off_version W.abi_version;
  Segment.set seg W.off_total_words words;
  Segment.set seg W.off_capacity capacity;
  Segment.set seg W.off_arg_words arg_words;
  for off = W.off_server_pid to W.off_sessions do
    Segment.set seg off 0
  done;
  Segment.set seg W.submit_head 0;
  Segment.set seg W.submit_tail 0;
  Segment.set seg (W.reclaim_head ~capacity) 0;
  Segment.set seg (W.reclaim_tail ~capacity) 0;
  let cw = W.cell_words ~arg_words in
  let base = W.cells_base ~capacity in
  for i = 0 to capacity - 1 do
    for j = 0 to cw - 1 do
      Segment.set seg (base + (i * cw) + j) 0
    done
  done;
  Segment.set seg W.off_generation (building + 1) (* even: open for attach *)

let create_heap ?capacity ?arg_words () =
  let capacity' = Option.value capacity ~default:64 in
  let arg_words' = Option.value arg_words ~default:8 in
  let seg =
    Segment.create_heap ~words:(total_words ~capacity:capacity' ~arg_words:arg_words')
  in
  layout ?capacity ?arg_words seg;
  seg

let create_file ~path ?(capacity = 64) ?(arg_words = 8) () =
  let seg =
    Segment.map_file ~path ~words:(total_words ~capacity ~arg_words)
      ~create:true ()
  in
  layout ~capacity ~arg_words seg;
  ignore (Segment.msync seg : int);
  seg

exception Bad_segment of string

let validate seg =
  if Segment.get seg W.off_magic <> W.magic then
    raise (Bad_segment "bad magic (not a PPC segment, or wrong endianness)");
  let v = Segment.get seg W.off_version in
  if v <> W.abi_version then
    raise
      (Bad_segment
         (Printf.sprintf "ABI version %d, this build speaks %d" v W.abi_version));
  let gen = Segment.get seg W.off_generation in
  if gen = 0 || gen land 1 = 1 then
    raise (Bad_segment "segment still under construction (odd generation)")

(* Rebuild an existing segment in place for a fresh lease: same
   geometry (read back from the header), next generation.  The caller
   is a supervisor replacing a dead server.  Deliberately never
   truncates or remaps the file: a surviving client still holds a
   mapping, and shrinking a mapped file turns its loads into SIGBUS —
   instead the survivor reads the bumped generation and fails closed
   with [Errc.stale_generation]. *)
let regenerate seg =
  if Segment.get seg W.off_magic <> W.magic then
    raise (Bad_segment "regenerate: not a PPC segment");
  let capacity = Segment.get seg W.off_capacity in
  let arg_words = Segment.get seg W.off_arg_words in
  layout ~capacity ~arg_words seg

(* Default cpu-relax budget before a waiter starts yielding.  Spinning
   only pays when the peer can make progress on another core; on a
   single-CPU box the whole budget is burned while the peer is
   descheduled, so the fast path there is to hand the core over almost
   immediately (the paper's hand-off discipline, enforced by the
   scheduler). *)
let default_spin =
  if Domain.recommended_domain_count () <= 1 then 16 else 2048

let attach ?(spin = default_spin) ?(probe_window_ns = 50_000_000) ~role seg =
  validate seg;
  let capacity = Segment.get seg W.off_capacity in
  let arg_words = Segment.get seg W.off_arg_words in
  let pid_off =
    match role with Server -> W.off_server_pid | Client -> W.off_client_pid
  in
  (* One endpoint per role per segment: attaching over a live slot
     would add a second writer to single-writer words.  The slot is
     open when its pid word is 0 — fresh build, regeneration, or the
     server released the session — or already ours (same-process
     re-attach; every in-process test and bench runs both roles under
     one pid).  A successor process must wait for the release/rebuild:
     Shm_session retries under its connect deadline. *)
  let holder = Segment.get seg pid_off in
  if holder <> 0 && holder <> Unix.getpid () then
    raise
      (Bad_segment
         (Printf.sprintf "%s slot held by pid %d"
            (match role with Server -> "server" | Client -> "client")
            holder));
  let t =
    {
      seg;
      role;
      capacity;
      arg_words;
      rc_slot = arg_words - 1;
      cell_words = W.cell_words ~arg_words;
      cells_base = W.cells_base ~capacity;
      spin;
      probe_window_ns;
      gen = Segment.get seg W.off_generation;
      free = Array.init capacity (fun i -> capacity - 1 - i);
      free_len = (match role with Client -> capacity | Server -> 0);
      hb = 0;
      peer_dead = false;
      swept = 0;
      timeouts = 0;
      submitted = 0;
      served = 0;
      batches = 0;
      peer_hb_seen = 0;
      peer_hb_changed_ns = Doorbell.now_ns ();
      scratch = Array.make arg_words 0;
    }
  in
  Segment.set seg pid_off (Unix.getpid ());
  bump_heartbeat t;
  Segment.set seg (my_state_off t) W.peer_ready;
  t

(* Map an existing segment file: read the header from a minimal mapping
   first (the full extent is in the header), then map the whole thing.
   Spins until the creator's seqlock opens, bounded by [timeout_ns].
   [after_generation] makes a reattach wait out the rebuild: only a
   segment whose (even, open) generation exceeds it is accepted, so a
   client that just observed [Errc.stale_generation] at generation g
   cannot re-latch onto the very mapping it fled. *)
let attach_file ?spin ?probe_window_ns ?(timeout_ns = 5_000_000_000)
    ?(after_generation = 0) ~role path =
  let deadline = Doorbell.now_ns () + timeout_ns in
  let rec header_seg () =
    let ok =
      match Segment.map_file ~path ~words:W.header_words ~create:false () with
      | seg -> (
          match validate seg with
          | () ->
              if Segment.get seg W.off_generation > after_generation then
                Some seg
              else None
          | exception Bad_segment _ -> None)
      | exception Unix.Unix_error _ -> None
    in
    match ok with
    | Some seg -> seg
    | None ->
        if Doorbell.now_ns () > deadline then
          raise (Bad_segment (path ^ ": no valid segment appeared in time"))
        else begin
          Doorbell.nap_ns 200_000;
          header_seg ()
        end
  in
  let hdr = header_seg () in
  let words = Segment.get hdr W.off_total_words in
  let seg = Segment.map_file ~path ~words ~create:false () in
  attach ?spin ?probe_window_ns ~role seg

let segment t = t.seg
let capacity t = t.capacity
let arg_words t = t.arg_words
let generation t = t.gen

(* The segment was rebuilt (regenerated, or the session released) after
   this endpoint attached: every operation on [t] now fails closed. *)
let stale t = Segment.get t.seg W.off_generation <> t.gen

(* --- liveness -------------------------------------------------------------- *)

(* One probe step, called from wait loops.  Cheap path: peer heartbeat
   moved, remember when.  Slow path (heartbeat frozen past the window):
   kill(pid, 0).  Both sides run the same machine. *)
let probe_peer t =
  if not t.peer_dead then begin
    let hb = Segment.get t.seg (peer_hb_off t) in
    let now = Doorbell.now_ns () in
    if hb <> t.peer_hb_seen then begin
      t.peer_hb_seen <- hb;
      t.peer_hb_changed_ns <- now
    end
    else if now - t.peer_hb_changed_ns > t.probe_window_ns then begin
      let pid = Segment.get t.seg (peer_pid_off t) in
      if pid <> 0 && not (Segment.pid_alive pid) then t.peer_dead <- true;
      (* rate-limit the syscall to once per window while the peer is a
         live-but-idle process *)
      t.peer_hb_changed_ns <- now - (t.probe_window_ns / 2)
    end
  end;
  t.peer_dead

let peer_dead t = t.peer_dead

(* Fail/reclaim every cell the dead peer held, exactly once per cell
   (CAS-arbitrated, so calling this twice — or racing a late sweep
   against an await that triggered its own — cannot double-recycle).
   Returns how many cells this invocation swept.  Idempotent. *)
let sweep_dead_peer t =
  let n = ref 0 in
  for i = 0 to t.capacity - 1 do
    let st = cell_state t i in
    if
      Segment.cas t.seg st ~expected:W.state_pending ~desired:W.state_done
    then begin
      (* An in-flight call: complete it locally with handler_fault so
         its awaiter unblocks with the containment verdict.  Single
         writer now (the peer is dead), so the rc store after the state
         flip is observed by this process's own await loop only. *)
      Segment.set t.seg (cell_arg t i t.rc_slot) Errc.handler_fault;
      incr n;
      ignore (Segment.fetch_add t.seg W.off_peer_faults 1 : int)
    end
    else if
      Segment.cas t.seg st ~expected:W.state_abandoned ~desired:W.state_free
    then begin
      (* A cell the client abandoned on deadline whose reclaim the dead
         server still owed: recycle it straight to the free stack. *)
      (match t.role with
      | Client ->
          t.free.(t.free_len) <- i;
          t.free_len <- t.free_len + 1
      | Server -> ());
      incr n;
      ignore (Segment.fetch_add t.seg W.off_reclaimed 1 : int)
    end
  done;
  t.swept <- t.swept + !n;
  !n

(* --- client side ----------------------------------------------------------- *)

(* Drain the server->client reclaim ring into the free stack (the
   §4.5.6 side stack, cold path). *)
let drain_reclaim t =
  let cap = t.capacity in
  let head = ref (Segment.get t.seg (W.reclaim_head ~capacity:cap)) in
  let tail = Segment.get t.seg (W.reclaim_tail ~capacity:cap) in
  while !head < tail do
    let idx = Segment.get t.seg (W.reclaim_slot ~capacity:cap !head) in
    t.free.(t.free_len) <- idx;
    t.free_len <- t.free_len + 1;
    incr head;
    Segment.set t.seg (W.reclaim_head ~capacity:cap) !head
  done

let free_cells t =
  drain_reclaim t;
  t.free_len

let in_flight t = t.capacity - free_cells t

(* Submit one call: acquire a cell, stage the arguments, publish it
   through the submission ring, ring the doorbell.  Returns the cell
   index (>= 0) to [await] on, or a negative [Errc] code ([retry] on
   exhaustion, [peer_dead] once the peer is known dead,
   [stale_generation] once the segment was rebuilt underneath this
   mapping).  The sign-split return keeps the warm path free of result
   boxes — this is what [call] rides; {!submit} wraps it for ergonomic
   callers.  Client only; allocation-free. *)
let submit_raw t ~ep args =
  if t.peer_dead then Errc.peer_dead
  else if stale t then Errc.stale_generation
  else begin
    if t.free_len = 0 then drain_reclaim t;
    if t.free_len = 0 then Errc.retry
    else begin
      let cap = t.capacity in
      let tail = Segment.get t.seg W.submit_tail in
      let head = Segment.get t.seg W.submit_head in
      if tail - head > cap - 1 then Errc.retry
      else begin
        t.free_len <- t.free_len - 1;
        let i = t.free.(t.free_len) in
        Segment.set t.seg (cell_ep t i) ep;
        for j = 0 to t.arg_words - 1 do
          Segment.set t.seg (cell_arg t i j) args.(j)
        done;
        Segment.set t.seg (cell_state t i) W.state_pending;
        Segment.set t.seg (W.submit_slot ~capacity:cap tail) i;
        Segment.set t.seg W.submit_tail (tail + 1);
        ignore (Segment.fetch_add t.seg W.off_doorbell 1 : int);
        bump_heartbeat t;
        t.submitted <- t.submitted + 1;
        i
      end
    end
  end

let submit t ~ep args =
  let r = submit_raw t ~ep args in
  if r >= 0 then Ok r else Error r

(* Wait for cell [i] to complete; copy the reply back into [args] and
   recycle the cell.  [deadline] is absolute CLOCK_MONOTONIC ns
   ([max_int] = none): on expiry the cell is abandoned to the server by
   the Pending->Abandoned CAS handoff and the call answers
   [Errc.timed_out].  Peer death answers [Errc.handler_fault] via the
   sweep; a segment rebuilt mid-wait answers [Errc.stale_generation]
   and orphans the cell with the old session (the channel is defunct —
   do not recycle into a slab that no longer exists).  Spin -> yield ->
   nap; allocation-free. *)
(* The wait loop is a top-level function taking its whole state as
   immediate arguments — a local recursive closure (or ref cells) would
   cost a minor allocation per call and break the zero-alloc pin. *)
let rec await_loop t i args deadline st_off spins nap =
  let st = Segment.get t.seg st_off in
  if st = W.state_done then begin
    for j = 0 to t.arg_words - 1 do
      args.(j) <- Segment.get t.seg (cell_arg t i j)
    done;
    Segment.set t.seg st_off W.state_free;
    t.free.(t.free_len) <- i;
    t.free_len <- t.free_len + 1;
    args.(t.rc_slot)
  end
  else if deadline <> max_int && Doorbell.now_ns () > deadline then
    if
      Segment.cas t.seg st_off ~expected:W.state_pending
        ~desired:W.state_abandoned
    then begin
      (* Ownership handed to the server: it discards the late reply
         and returns the cell through the reclaim ring. *)
      t.timeouts <- t.timeouts + 1;
      args.(t.rc_slot) <- Errc.timed_out;
      Errc.timed_out
    end
    else await_loop t i args deadline st_off spins nap
    (* lost the race to Done: take the reply *)
  else if stale t then begin
    args.(t.rc_slot) <- Errc.stale_generation;
    Errc.stale_generation
  end
  else begin
    if probe_peer t then ignore (sweep_dead_peer t : int);
    bump_heartbeat t;
    if spins < t.spin then Domain.cpu_relax ()
    else if spins < t.spin + 64 then Doorbell.yield ()
    else Doorbell.nap_ns nap;
    await_loop t i args deadline st_off (spins + 1)
      (if spins < t.spin + 64 then nap else min (2 * nap) 50_000)
  end

let await ?(deadline = max_int) t i args =
  await_loop t i args deadline (cell_state t i) 0 1_000

let call t ~ep args =
  let i = submit_raw t ~ep args in
  if i < 0 then begin
    args.(t.rc_slot) <- i;
    i
  end
  else await t i args

let call_deadline t ~ep ~deadline args =
  let i = submit_raw t ~ep args in
  if i < 0 then begin
    args.(t.rc_slot) <- i;
    i
  end
  else await ~deadline t i args

(* Announce clean shutdown to the serving side (its loop exits once the
   ring is dry). *)
let announce_shutdown t =
  Segment.set t.seg (my_state_off t) W.peer_shutdown

(* --- server side ----------------------------------------------------------- *)

type dispatch = ep_word:int -> int array -> int

(* Return an abandoned cell through the reclaim ring.  Cannot overflow:
   the ring has as many slots as there are cells. *)
let reclaim_cell t i =
  let cap = t.capacity in
  Segment.set t.seg (cell_state t i) W.state_free;
  let tail = Segment.get t.seg (W.reclaim_tail ~capacity:cap) in
  Segment.set t.seg (W.reclaim_slot ~capacity:cap tail) i;
  Segment.set t.seg (W.reclaim_tail ~capacity:cap) (tail + 1);
  ignore (Segment.fetch_add t.seg W.off_reclaimed 1 : int)

(* Drain the submission ring once: run every queued call through
   [dispatch], publish replies, recycle abandoned cells.  Returns how
   many requests were served.  Server only. *)
let serve_once t ~dispatch =
  let cap = t.capacity in
  let served = ref 0 in
  let head = ref (Segment.get t.seg W.submit_head) in
  let tail = Segment.get t.seg W.submit_tail in
  while !head < tail do
    let i = Segment.get t.seg (W.submit_slot ~capacity:cap !head) in
    incr head;
    Segment.set t.seg W.submit_head !head;
    let st = Segment.get t.seg (cell_state t i) in
    if st = W.state_pending then begin
      for j = 0 to t.arg_words - 1 do
        t.scratch.(j) <- Segment.get t.seg (cell_arg t i j)
      done;
      let ep_word = Segment.get t.seg (cell_ep t i) in
      let rc =
        match dispatch ~ep_word t.scratch with
        | rc -> rc
        | exception _ -> Errc.handler_fault
      in
      t.scratch.(t.rc_slot) <- rc;
      for j = 0 to t.arg_words - 1 do
        Segment.set t.seg (cell_arg t i j) t.scratch.(j)
      done;
      if
        not
          (Segment.cas t.seg (cell_state t i) ~expected:W.state_pending
             ~desired:W.state_done)
      then
        (* The client abandoned the call while the handler ran: the
           reply is discarded, the cell is the server's to recycle —
           exactly once, because only the CAS loser reclaims. *)
        reclaim_cell t i
    end
    else if st = W.state_abandoned then reclaim_cell t i;
    incr served;
    t.served <- t.served + 1
  done;
  if !served > 0 then t.batches <- t.batches + 1;
  bump_heartbeat t;
  !served

(* The server loop: drain, park in growing naps when dry, exit when the
   client announces shutdown (and the ring is dry), is found dead
   (after reclaiming its cells), or the segment is regenerated
   underneath this server (a supervisor replaced it while it was
   presumed dead — fail closed, and in particular do not write a
   shutdown announcement into a session that is no longer ours).
   Returns the number of requests served over the loop's lifetime. *)
let serve t ~dispatch =
  let continue_ = ref true in
  let nap = ref 1_000 in
  let idle = ref 0 in
  while !continue_ do
    if stale t then continue_ := false
    else begin
      let n = serve_once t ~dispatch in
      if n > 0 then begin
        nap := 1_000;
        idle := 0
      end
      else begin
        if Segment.get t.seg (peer_state_off t) = W.peer_shutdown then
          continue_ := false
        else if probe_peer t then begin
          ignore (sweep_dead_peer t : int);
          continue_ := false
        end
        else begin
          (* Same spin -> yield -> nap ladder as the client's await: a
             server that napped the instant the ring went dry would put a
             wakeup latency on every ping-pong round trip. *)
          incr idle;
          if !idle < t.spin then Domain.cpu_relax ()
          else if !idle < t.spin + 64 then Doorbell.yield ()
          else begin
            Doorbell.nap_ns !nap;
            nap := min (2 * !nap) 50_000
          end
        end
      end
    end
  done;
  if not (stale t) then announce_shutdown t;
  t.served

(* Release a dead (or departed) client's session so the segment can
   host a successor without a server restart: sweep the client's cells
   exactly once (every in-flight call gets its verdict, every stranded
   abandoned cell is recycled — the containment half of the tentpole),
   then rebuild rings, cells and the client words under the generation
   seqlock.  The client is confirmed dead so no live process holds the
   old session, but a half-attached straggler mapping would observe
   the odd generation mid-rebuild and fail closed like any stale
   reader.  Cumulative counters (doorbell, reclaimed, peer_faults,
   sessions) survive the release: they are observability, not session
   state.  The server's own [t] follows the new generation and keeps
   serving.  Server only. *)
let release_session t =
  (match t.role with
  | Server -> ()
  | Client -> invalid_arg "Shm_channel.release_session: server role required");
  ignore (sweep_dead_peer t : int);
  let seg = t.seg in
  let g = Segment.get seg W.off_generation in
  let building = if g land 1 = 1 then g + 2 else g + 1 in
  Segment.set seg W.off_generation building;
  Segment.set seg W.off_client_pid 0;
  Segment.set seg W.off_client_heartbeat 0;
  Segment.set seg W.off_client_state W.peer_absent;
  Segment.set seg W.submit_head 0;
  Segment.set seg W.submit_tail 0;
  Segment.set seg (W.reclaim_head ~capacity:t.capacity) 0;
  Segment.set seg (W.reclaim_tail ~capacity:t.capacity) 0;
  for i = 0 to t.capacity - 1 do
    for j = 0 to t.cell_words - 1 do
      Segment.set seg (t.cells_base + (i * t.cell_words) + j) 0
    done
  done;
  ignore (Segment.fetch_add seg W.off_sessions 1 : int);
  Segment.set seg W.off_generation (building + 1);
  t.gen <- building + 1;
  t.peer_dead <- false;
  t.peer_hb_seen <- 0;
  t.peer_hb_changed_ns <- Doorbell.now_ns ()

(* The multi-session server loop: like [serve], but a client found dead
   is swept and its session released ([on_release] fires once per
   release), after which the loop keeps serving for the next client.
   Exits on a clean client shutdown or on regeneration underneath.
   Returns requests served over the loop's lifetime.  Server only. *)
let serve_sessions ?(on_release = fun () -> ()) t ~dispatch =
  (match t.role with
  | Server -> ()
  | Client -> invalid_arg "Shm_channel.serve_sessions: server role required");
  let continue_ = ref true in
  let nap = ref 1_000 in
  let idle = ref 0 in
  while !continue_ do
    if stale t then continue_ := false
    else begin
      let n = serve_once t ~dispatch in
      if n > 0 then begin
        nap := 1_000;
        idle := 0
      end
      else if Segment.get t.seg (peer_state_off t) = W.peer_shutdown then
        continue_ := false
      else if probe_peer t then begin
        release_session t;
        on_release ();
        nap := 1_000;
        idle := 0
      end
      else begin
        incr idle;
        if !idle < t.spin then Domain.cpu_relax ()
        else if !idle < t.spin + 64 then Doorbell.yield ()
        else begin
          Doorbell.nap_ns !nap;
          nap := min (2 * !nap) 50_000
        end
      end
    end
  done;
  if not (stale t) then announce_shutdown t;
  t.served

(* A dispatcher over a Fastcall table + control plane: the thing that
   makes a shared segment a full IPC endpoint.  Decodes the cell's
   entry-point word (versioned handle / raw ID / control plane) and
   speaks the Wire_abi management vocabulary — registration ships
   behavior *specs* (two words) that are compiled against this very
   table, so self-killing behaviors target the entry point they were
   registered under, exactly like the in-process subjects. *)
let fastcall_dispatch ?(principal = 7) fast ctl : dispatch =
  let nap_ms ms = Doorbell.nap_ns (ms * 1_000_000) in
  let compile ~self spec =
    let kill k () =
      match !self with Some ep -> k ep | None -> Errc.no_entry
    in
    let b =
      Ipc_intf.Sigs.compile
        ~kill_soft:(kill (fun ep -> Fastcall.soft_kill_h fast ep))
        ~kill_hard:(kill (fun ep -> Fastcall.hard_kill_h fast ep))
        ~nap_ms spec
    in
    fun (_ : Fastcall.ctx) args -> b args
  in
  fun ~ep_word args ->
    let rc_slot = Array.length args - 1 in
    if ep_word = W.ctl_ep then begin
      let ret rc =
        args.(rc_slot) <- rc;
        rc
      in
      let op = args.(0) in
      if op = W.ctl_register then (
        match W.spec_of_wire ~code:args.(1) ~param:args.(2) with
        | None -> ret Errc.bad_request
        | Some spec ->
            let self = ref None in
            let ep = Fastcall.register_ep fast (compile ~self spec) in
            self := Some ep;
            args.(0) <- Fastcall.ep_to_wire ep;
            ret Errc.ok)
      else if op = W.ctl_publish then
        let name = W.unpack_name (args.(2), args.(3)) in
        ret
          (Control.publish ctl ~principal ~name ~ep:(W.handle_slot args.(1)))
      else if op = W.ctl_lookup then (
        match Control.lookup ctl ~name:(W.unpack_name (args.(1), args.(2))) with
        | Ok id ->
            args.(0) <- id;
            ret Errc.ok
        | Error rc -> ret rc)
      else if op = W.ctl_exchange then (
        match W.spec_of_wire ~code:args.(2) ~param:args.(3) with
        | None -> ret Errc.bad_request
        | Some spec ->
            let ep = Fastcall.ep_of_wire args.(1) in
            ret (Fastcall.exchange_h fast ep (compile ~self:(ref (Some ep)) spec)))
      else if op = W.ctl_soft_kill then
        ret (Fastcall.soft_kill_h fast (Fastcall.ep_of_wire args.(1)))
      else if op = W.ctl_hard_kill then
        ret (Fastcall.hard_kill_h fast (Fastcall.ep_of_wire args.(1)))
      else if op = W.ctl_in_flight then begin
        args.(0) <- Fastcall.in_flight_h fast (Fastcall.ep_of_wire args.(1));
        ret Errc.ok
      end
      else ret Errc.bad_request
    end
    else if W.is_raw_call ep_word then (
      match Fastcall.call fast ~ep:(W.raw_call_id ep_word) args with
      | rc -> rc
      | exception Fastcall.No_entry _ ->
          args.(rc_slot) <- Errc.no_entry;
          Errc.no_entry)
    else Fastcall.call_h fast (Fastcall.ep_of_wire ep_word) args

(* --- observability --------------------------------------------------------- *)

let swept t = t.swept
let timeouts t = t.timeouts
let submitted t = t.submitted
let served t = t.served
let batches t = t.batches
let doorbell_rings t = Segment.get t.seg W.off_doorbell
let reclaimed t = Segment.get t.seg W.off_reclaimed
let peer_faults t = Segment.get t.seg W.off_peer_faults
let sessions_released t = Segment.get t.seg W.off_sessions
let peer_pid t = Segment.get t.seg (peer_pid_off t)
let peer_ready t = Segment.get t.seg (peer_state_off t) = W.peer_ready

(* Block (bounded) until the peer writes its ready state — the handshake
   a forking demo does before its first call. *)
let wait_peer_ready ?(timeout_ns = 5_000_000_000) t =
  let deadline = Doorbell.now_ns () + timeout_ns in
  let rec go () =
    if peer_ready t then true
    else if Doorbell.now_ns () > deadline then false
    else begin
      Doorbell.nap_ns 200_000;
      go ()
    end
  in
  go ()
