(* Bounded single-producer single-consumer ring buffer.

   Head and tail are owned by one side each; the opposite side only reads
   the other's counter.  Power-of-two capacity, no locks, no allocation
   after creation — the runtime analogue of a preallocated, serially
   reused stack page. *)

type 'a t = {
  buffer : 'a option array;
  mask : int;
  head : int Atomic.t;  (** next slot to read (consumer-owned) *)
  tail : int Atomic.t;  (** next slot to write (producer-owned) *)
}

(* One validation, one message shape, shared with [Raw.create] and
   [Request_slab.create]: tooling that pattern-matches the error does it
   once. *)
let validate_capacity fn capacity =
  if capacity <= 0 || capacity land (capacity - 1) <> 0 then
    invalid_arg
      (Printf.sprintf "%s: capacity must be a positive power of two (got %d)"
         fn capacity)

let create ~capacity =
  validate_capacity "Spsc_ring.create" capacity;
  {
    buffer = Array.make capacity None;
    mask = capacity - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1
let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0
let is_full t = length t > t.mask

(* Producer only. *)
let try_push t v =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    t.buffer.(tail land t.mask) <- Some v;
    (* Publish after the write. *)
    Atomic.set t.tail (tail + 1);
    true
  end

(* Consumer only. *)
let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail = head then None
  else begin
    let slot = head land t.mask in
    let v = t.buffer.(slot) in
    t.buffer.(slot) <- None;
    Atomic.set t.head (head + 1);
    v
  end

let rec push_wait t v =
  if not (try_push t v) then begin
    Domain.cpu_relax ();
    push_wait t v
  end

let rec pop_wait t =
  match try_pop t with
  | Some v -> v
  | None ->
      Domain.cpu_relax ();
      pop_wait t

(* A variant that stores elements directly (no [Some] box): the producer
   supplies a distinguished [dummy] value that marks empty slots, so a
   push performs no allocation at all.  This is what the zero-allocation
   cross-domain call path rides on: the option-boxing ring above costs
   one minor-heap block per push, which is exactly the cost the paper's
   recycled-descriptor discipline exists to avoid. *)
module Raw = struct
  type 'a t = {
    buffer : 'a array;
    dummy : 'a;
    mask : int;
    head : int Atomic.t;  (** next slot to read (consumer-owned) *)
    tail : int Atomic.t;  (** next slot to write (producer-owned) *)
  }

  let create ~capacity ~dummy =
    validate_capacity "Spsc_ring.Raw.create" capacity;
    {
      buffer = Array.make capacity dummy;
      dummy;
      mask = capacity - 1;
      head = Atomic.make 0;
      tail = Atomic.make 0;
    }

  let capacity t = t.mask + 1
  let length t = Atomic.get t.tail - Atomic.get t.head
  let is_empty t = length t = 0
  let is_full t = length t > t.mask

  (* Producer only.  The slot write is published by the tail store. *)
  let try_push t v =
    let tail = Atomic.get t.tail in
    let head = Atomic.get t.head in
    if tail - head > t.mask then false
    else begin
      t.buffer.(tail land t.mask) <- v;
      Atomic.set t.tail (tail + 1);
      true
    end

  (* Consumer only (or a stealer holding the channel's consumer lock). *)
  let try_pop t =
    let head = Atomic.get t.head in
    let tail = Atomic.get t.tail in
    if tail = head then t.dummy
    else begin
      let slot = head land t.mask in
      let v = t.buffer.(slot) in
      t.buffer.(slot) <- t.dummy;
      (* drop the reference *)
      Atomic.set t.head (head + 1);
      v
    end
end
