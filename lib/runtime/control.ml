(* The runtime's IPC control plane: the Name Server at well-known entry
   point 0 and the resource manager at entry point 1, over the shared
   {!Ipc_intf} vocabulary — the same two services the simulator installs
   as [Naming.Name_server] and [Ppc.Frank].

   Both are ordinary entry points in the Fastcall table, so they are
   reachable two ways:
   - *directly*, by the embedding program ([Fastcall.call] from any
     domain, or the stub functions below with their default path);
   - over the *channel path*, by passing [~via:(Fastcall.channel_call
     client)] to the stubs — a client domain then manages services with
     ordinary PPCs, exactly as the paper's clients talk to Frank and the
     Name Server.

   Handlers cannot travel through eight registers, so — like Frank —
   callers first {!stage} the handler and pass the staging token in the
   call.

   Register-argument convention (8 words, [Ipc_intf.Opfield] packed
   op/flags in slot 7 on the way in, [Ipc_intf.Errc] return code on the
   way out):
   - Name Server ops: slots 0-1 carry the two {!Ipc_intf.Name_hash}
     words, slot 2 the entry-point ID (register) or the answer (lookup);
   - manager ops: slot 0 carries the entry-point ID or staging token,
     slot 1 the exchange token or pool size;
   - slot 6 always carries the caller's principal (the paper's program
     ID: Section 4.1 makes authentication the server's job, so the
     control plane checks its own ACL — open until the first {!grant}).
*)

module Errc = Ipc_intf.Errc
module Wk = Ipc_intf.Wellknown
module Opfield = Ipc_intf.Opfield

let rc_slot = Fastcall.arg_words - 1
let principal_slot = 6

type binding = { b_ep : int; b_owner : int }

type t = {
  table : Fastcall.t;
  mu : Mutex.t;  (** registry, staging and ACL: management path only *)
  names : (int * int, binding) Hashtbl.t;
  acl : (int, Ipc_intf.Auth.perm list) Hashtbl.t;
  mutable staging : (int * Fastcall.handler) list;
  mutable next_token : int;
  mutable ns_ep : Fastcall.ep option;
  mutable mgr_ep : Fastcall.ep option;
}

(* --- server-side authentication (Section 4.1) -------------------------- *)

let grant t ~principal ~perms =
  Mutex.lock t.mu;
  Hashtbl.replace t.acl principal perms;
  Mutex.unlock t.mu

let revoke t ~principal =
  Mutex.lock t.mu;
  Hashtbl.remove t.acl principal;
  Mutex.unlock t.mu

(* Callers are checked against the control plane's own ACL; an empty ACL
   means authentication is not configured and everything is permitted.
   Call with [t.mu] held. *)
let permitted_locked t ~principal ~perm =
  Hashtbl.length t.acl = 0
  ||
  match Hashtbl.find_opt t.acl principal with
  | Some perms -> List.mem perm perms
  | None -> false

let check t ~principal ~perm =
  Mutex.lock t.mu;
  let ok = permitted_locked t ~principal ~perm in
  Mutex.unlock t.mu;
  ok

(* --- staging (Frank's pattern: the token stands in for "the routine's
   address inside the caller's space") ----------------------------------- *)

let stage t handler =
  Mutex.lock t.mu;
  let token = t.next_token in
  t.next_token <- token + 1;
  t.staging <- (token, handler) :: t.staging;
  Mutex.unlock t.mu;
  token

let take_staged_locked t token =
  match List.assoc_opt token t.staging with
  | None -> None
  | Some h ->
      t.staging <- List.remove_assoc token t.staging;
      Some h

(* --- the two well-known handlers --------------------------------------- *)

let ns_handler t : Fastcall.handler =
 fun _ctx args ->
  let op = Opfield.op_of args.(rc_slot) in
  let key = (args.(0), args.(1)) in
  let principal = args.(principal_slot) in
  Mutex.lock t.mu;
  (if op = Wk.op_register then begin
     if not (permitted_locked t ~principal ~perm:Ipc_intf.Auth.Write) then
       args.(rc_slot) <- Errc.denied
     else
       match Hashtbl.find_opt t.names key with
       | Some _ -> args.(rc_slot) <- Errc.bad_request
       | None ->
           Hashtbl.replace t.names key { b_ep = args.(2); b_owner = principal };
           args.(rc_slot) <- Errc.ok
   end
   else if op = Wk.op_lookup then begin
     (* Lookup is open to everyone, as in the paper. *)
     match Hashtbl.find_opt t.names key with
     | Some b ->
         args.(2) <- b.b_ep;
         args.(rc_slot) <- Errc.ok
     | None -> args.(rc_slot) <- Errc.no_entry
   end
   else if op = Wk.op_unregister then begin
     (* Only the publishing owner may unbind. *)
     match Hashtbl.find_opt t.names key with
     | Some b when b.b_owner = principal ->
         Hashtbl.remove t.names key;
         args.(rc_slot) <- Errc.ok
     | Some _ -> args.(rc_slot) <- Errc.denied
     | None -> args.(rc_slot) <- Errc.no_entry
   end
   else args.(rc_slot) <- Errc.bad_request);
  Mutex.unlock t.mu

let mgr_handler t : Fastcall.handler =
 fun _ctx args ->
  let op = Opfield.op_of args.(rc_slot) in
  let principal = args.(principal_slot) in
  if not (check t ~principal ~perm:Ipc_intf.Auth.Admin) then
    args.(rc_slot) <- Errc.denied
  else if op = Wk.op_alloc_ep then begin
    Mutex.lock t.mu;
    let staged = take_staged_locked t args.(0) in
    Mutex.unlock t.mu;
    match staged with
    | None -> args.(rc_slot) <- Errc.bad_request
    | Some h ->
        args.(0) <- Fastcall.register t.table h;
        args.(rc_slot) <- Errc.ok
  end
  else if op = Wk.op_soft_kill then
    args.(rc_slot) <- Fastcall.soft_kill t.table ~ep:args.(0)
  else if op = Wk.op_hard_kill then
    args.(rc_slot) <- Fastcall.hard_kill t.table ~ep:args.(0)
  else if op = Wk.op_exchange then begin
    Mutex.lock t.mu;
    let staged = take_staged_locked t args.(1) in
    Mutex.unlock t.mu;
    match staged with
    | None -> args.(rc_slot) <- Errc.bad_request
    | Some h -> args.(rc_slot) <- Fastcall.exchange t.table ~ep:args.(0) h
  end
  else if op = Wk.op_grow_pool then begin
    (* Pre-populate the executing domain's context pool. *)
    Fastcall.warm_pool t.table (Stdlib.max 0 args.(1));
    args.(rc_slot) <- Errc.ok
  end
  else if op = Wk.op_reclaim then begin
    (* Shrink the executing domain's pool back to steady state. *)
    args.(0) <- Fastcall.trim_pool t.table ~max_ctxs:(Stdlib.max 1 args.(1));
    args.(rc_slot) <- Errc.ok
  end
  else args.(rc_slot) <- Errc.bad_request

(* Install the control plane at its well-known IDs.  Must run against a
   table with entry points 0 and 1 still free — i.e. first thing after
   [Fastcall.create], the way the simulator installs Frank and the Name
   Server during boot. *)
let install table =
  let t =
    {
      table;
      mu = Mutex.create ();
      names = Hashtbl.create 64;
      acl = Hashtbl.create 16;
      staging = [];
      next_token = 1;
      ns_ep = None;
      mgr_ep = None;
    }
  in
  let ns = Fastcall.register_ep table (ns_handler t) in
  if Fastcall.ep_id ns <> Wk.name_server_ep then
    invalid_arg "Control.install: entry point 0 already taken";
  let mgr = Fastcall.register_ep table (mgr_handler t) in
  if Fastcall.ep_id mgr <> Wk.resource_manager_ep then
    invalid_arg "Control.install: entry point 1 already taken";
  t.ns_ep <- Some ns;
  t.mgr_ep <- Some mgr;
  t

let table t = t.table
let bindings t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.names in
  Mutex.unlock t.mu;
  n

(* --- client stubs ------------------------------------------------------- *)

(* Each stub is one PPC to a well-known entry point.  [via] selects the
   path: the default goes straight through [Fastcall.call] on the
   caller's domain; pass [~via:(Fastcall.channel_call client)] to issue
   the same call cross-domain over the channel path. *)

type path = ep:int -> int array -> int

let direct t : path = fun ~ep args -> Fastcall.call t.table ~ep args

let stub ?via t ~ep ~op ~fill =
  let call = match via with Some c -> c | None -> direct t in
  let args = Array.make Fastcall.arg_words 0 in
  fill args;
  args.(rc_slot) <- Opfield.pack ~op ~flags:0;
  let rc = call ~ep args in
  (rc, args)

let publish ?via t ~principal ~name ~ep =
  let h1, h2 = Ipc_intf.Name_hash.hash_name name in
  fst
    (stub ?via t ~ep:Wk.name_server_ep ~op:Wk.op_register ~fill:(fun a ->
         a.(0) <- h1;
         a.(1) <- h2;
         a.(2) <- ep;
         a.(principal_slot) <- principal))

let lookup ?via t ~name =
  let h1, h2 = Ipc_intf.Name_hash.hash_name name in
  let rc, args =
    stub ?via t ~ep:Wk.name_server_ep ~op:Wk.op_lookup ~fill:(fun a ->
        a.(0) <- h1;
        a.(1) <- h2)
  in
  if rc = Errc.ok then Ok args.(2) else Error rc

let unpublish ?via t ~principal ~name =
  let h1, h2 = Ipc_intf.Name_hash.hash_name name in
  fst
    (stub ?via t ~ep:Wk.name_server_ep ~op:Wk.op_unregister ~fill:(fun a ->
         a.(0) <- h1;
         a.(1) <- h2;
         a.(principal_slot) <- principal))

let alloc_ep ?via t ~principal handler =
  let token = stage t handler in
  let rc, args =
    stub ?via t ~ep:Wk.resource_manager_ep ~op:Wk.op_alloc_ep ~fill:(fun a ->
        a.(0) <- token;
        a.(principal_slot) <- principal)
  in
  if rc = Errc.ok then Ok args.(0) else Error rc

let kill_stub ?via t ~principal ~op ~ep =
  fst
    (stub ?via t ~ep:Wk.resource_manager_ep ~op ~fill:(fun a ->
         a.(0) <- ep;
         a.(principal_slot) <- principal))

let soft_kill ?via t ~principal ~ep =
  kill_stub ?via t ~principal ~op:Wk.op_soft_kill ~ep

let hard_kill ?via t ~principal ~ep =
  kill_stub ?via t ~principal ~op:Wk.op_hard_kill ~ep

let exchange ?via t ~principal ~ep handler =
  let token = stage t handler in
  fst
    (stub ?via t ~ep:Wk.resource_manager_ep ~op:Wk.op_exchange ~fill:(fun a ->
         a.(0) <- ep;
         a.(1) <- token;
         a.(principal_slot) <- principal))

let grow_pool ?via t ~principal ~ctxs =
  fst
    (stub ?via t ~ep:Wk.resource_manager_ep ~op:Wk.op_grow_pool ~fill:(fun a ->
         a.(1) <- ctxs;
         a.(principal_slot) <- principal))

let reclaim ?via t ~principal ~max_ctxs =
  let rc, args =
    stub ?via t ~ep:Wk.resource_manager_ep ~op:Wk.op_reclaim ~fill:(fun a ->
        a.(1) <- max_ctxs;
        a.(principal_slot) <- principal)
  in
  if rc = Errc.ok then Ok args.(0) else Error rc
