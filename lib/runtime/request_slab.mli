(** Preallocated, serially reused cross-domain request cells — the
    runtime analogue of the paper's per-processor CD pool.  A cell holds
    the request inline (entry point + argument words) and completes
    through a one-word atomic state machine; its parking mutex/condvar
    are preallocated, so a warm call allocates nothing at all.

    The free list is owned by one client domain: acquire/release from
    that domain only.  The server never frees cells. *)

val state_free : int
val state_pending : int
val state_parked : int
val state_done : int

type cell = {
  index : int;
  args : int array;
  mutable ep : int;
  state : int Atomic.t;
  cm : Mutex.t;
  cc : Condition.t;
}

type t

val create : ?capacity:int -> arg_words:int -> unit -> t
val dummy_cell : arg_words:int -> cell
(** A cell usable as a {!Spsc_ring.Raw} empty-slot marker. *)

val arg_words : t -> int

val acquire : t -> cell
(** Owner only.  LIFO: returns the most recently released cell; grows
    the slab (one allocation) only when every cell is in flight. *)

val release : t -> cell -> unit
(** Owner only.  Resets the cell to [state_free] and pushes it back. *)

val created : t -> int
(** Cells ever created (initial capacity + growth). *)

val grows : t -> int
(** Acquires that found the pool empty — zero after warm-up on a
    well-sized slab. *)

val available : t -> int
val in_flight : t -> int
