(** Preallocated, serially reused cross-domain request cells — the
    runtime analogue of the paper's per-processor CD pool.  A cell holds
    the request inline (entry point + argument words) and completes
    through a one-word atomic state machine; its parking mutex/condvar
    are preallocated, so a warm call allocates nothing at all.

    The free list is owned by one client domain: acquire/release from
    that domain only.  The server frees nothing — except cells the
    client explicitly {e abandoned} on a call deadline, which the server
    returns through {!reclaim} (the runtime mirror of the paper's
    §4.5.6 CD reclamation on termination).  The owner drains those back
    into its pool lazily, so every cell is recycled exactly once. *)

val state_free : int
val state_pending : int
val state_parked : int
val state_done : int

val state_abandoned : int
(** Set by a client whose deadline expired, via CAS from
    [state_pending].  Winning that CAS transfers the cell to the server,
    which must {!reclaim} it (and discard any reply). *)

type cell = {
  index : int;
  args : int array;
  mutable ep : int;
  state : int Atomic.t;
  cm : Mutex.t;
  cc : Condition.t;
}

type t

val create : ?capacity:int -> ?max_cells:int -> arg_words:int -> unit -> t
(** [capacity] (default 16) must be a positive power of two — slab
    capacities pair with ring capacities, and the uniform
    [Invalid_argument] of {!Spsc_ring.validate_capacity} enforces the
    shared contract.  [max_cells] caps total growth (default unbounded);
    when the cap is reached {!try_acquire} returns [None] and
    {!exhausted} goes true.  Must be [>= capacity]. *)

val dummy_cell : arg_words:int -> cell
(** A cell usable as a {!Spsc_ring.Raw} empty-slot marker. *)

val arg_words : t -> int

val acquire : t -> cell
(** Owner only.  LIFO: returns the most recently released cell; grows
    the slab (one allocation) only when every cell is in flight — even
    past [max_cells].  Bounded callers check {!exhausted} first. *)

val try_acquire : t -> cell option
(** Owner only.  Like {!acquire} but honours [max_cells]: returns [None]
    when the slab is at its cap with every cell in flight. *)

val exhausted : t -> bool
(** Owner only.  True iff {!try_acquire} would return [None] right now:
    pool dry, nothing reclaimed, and the slab at its growth cap.
    Allocation-free, for warm-path backpressure checks. *)

val release : t -> cell -> unit
(** Owner only.  Resets the cell to [state_free] and pushes it back. *)

val reclaim : t -> cell -> unit
(** Any domain.  Return an abandoned cell to the slab via a lock-free
    side stack; the owner folds it back into the pool on a later
    acquire.  Only legal once the [state_pending] → [state_abandoned]
    handoff made the caller the cell's sole owner. *)

val created : t -> int
(** Cells ever created (initial capacity + growth). *)

val grows : t -> int
(** Acquires that found the pool empty — zero after warm-up on a
    well-sized slab. *)

val reclaimed : t -> int
(** Cells ever returned through {!reclaim}. *)

val available : t -> int
val in_flight : t -> int
