(** A process supervisor for the shm server: fork it over a segment
    file, detect its death by waitpid, regenerate the segment in place
    (next generation — surviving clients fail closed with
    [Errc.stale_generation] and reattach) and fork a replacement.

    {b Fork safety:} the supervising process must be single-domain
    when [start] (and every respawn inside {!check}) runs — forking a
    multi-domain OCaml runtime wedges the child's GC.  The supervisor
    is poll-driven for exactly that reason: drive {!check} from your
    loop, and drive it {e promptly} — it is also the reaper, and a
    SIGKILLed child stays an alive-looking zombie to the client's
    liveness probe until it is reaped. *)

type t

type status =
  | Running  (** the child is alive *)
  | Respawned
      (** the child was found dead; the segment was regenerated and a
          replacement forked *)
  | Exited of Unix.process_status
      (** the child exited while disarmed (or was already reaped) *)

val start :
  path:string ->
  ?capacity:int ->
  ?arg_words:int ->
  server:(unit -> int) ->
  unit ->
  t
(** Create and lay out the segment file, then fork the first child.
    The child runs [server] (attach the segment, serve) and exits with
    its return value; an escaping exception exits 120. *)

val check : t -> status
(** One poll: reap a dead child and — while armed — regenerate the
    segment and respawn.  Cheap when the child is alive (one
    [waitpid(WNOHANG)]). *)

val kill9 : t -> unit
(** SIGKILL the current child (the chaos injector).  The death is
    observed — and the replacement forked — by the next {!check}. *)

val disarm : t -> unit
(** Stop respawning: the next death is reported as [Exited]. *)

val wait_exit : ?timeout_ns:int -> t -> Unix.process_status option
(** {!disarm}, then wait (default bound 10 s) for the current child to
    exit cleanly; [None] on timeout with the child still running. *)

val pid : t -> int
(** The current child's pid; 0 after a disarmed exit. *)

val respawns : t -> int
(** Deaths healed so far — the chaos harness reconciles this against
    the kills it injected. *)
