(** Bounded lock-free single-producer single-consumer ring. *)

type 'a t

val validate_capacity : string -> int -> unit
(** [validate_capacity fn n] raises [Invalid_argument] with the uniform
    message ["<fn>: capacity must be a positive power of two (got <n>)"]
    unless [n] is a positive power of two.  Shared by {!create},
    {!Raw.create} and [Request_slab.create] so the contract is enforced
    (and worded) once. *)

val create : capacity:int -> 'a t
(** [capacity] must be a positive power of two.
    @raise Invalid_argument otherwise (see {!validate_capacity}). *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Producer domain only. *)

val try_pop : 'a t -> 'a option
(** Consumer domain only. *)

val push_wait : 'a t -> 'a -> unit
val pop_wait : 'a t -> 'a

(** Allocation-free variant: slots hold elements directly, with a
    caller-supplied [dummy] marking empty slots, so pushes allocate
    nothing.  Never push the dummy itself. *)
module Raw : sig
  type 'a t

  val create : capacity:int -> dummy:'a -> 'a t
  (** [capacity] must be a positive power of two. *)

  val capacity : 'a t -> int
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val is_full : 'a t -> bool

  val try_push : 'a t -> 'a -> bool
  (** Producer domain only. *)

  val try_pop : 'a t -> 'a
  (** Consumer domain only (or a stealer that has serialized itself with
      the consumer).  Returns [dummy] when the ring is empty. *)
end
