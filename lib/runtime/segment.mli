(** The fast-path memory substrate: a flat, offset-addressed array of
    63-bit words with atomic get/set/CAS/fetch-add, addressed by the
    position-independent layout in {!Ipc_intf.Wire_abi}.

    Two backends: [Heap] (an [int Atomic.t] per word — this process
    only, the existing in-heap discipline) and [Shm] (int64 Bigarray
    over an mmap'd file with C11-atomic stubs — one coherent word array
    shared by separate OS processes).  All word accessors are
    allocation-free on both backends. *)

type t

val create_heap : words:int -> t
(** A zero-filled in-process segment. *)

val map_file : path:string -> words:int -> create:bool -> unit -> t
(** Map [words] 64-bit words of the file at [path], [MAP_SHARED].
    [create:true] creates/truncates (the creator then lays out the
    segment under the {!Ipc_intf.Wire_abi} generation seqlock);
    [create:false] attaches to an existing file.  Raises
    [Unix.Unix_error] on filesystem failure. *)

val length : t -> int
(** Words in the segment. *)

val get : t -> int -> int
(** Atomic acquire load.  Unchecked: the call path computes offsets
    from a validated header. *)

val set : t -> int -> int -> unit
(** Atomic release store. *)

val cas : t -> int -> expected:int -> desired:int -> bool
val fetch_add : t -> int -> int -> int
(** Sequentially consistent RMW; [fetch_add] returns the prior value. *)

val get_checked : t -> int -> int
val set_checked : t -> int -> int -> unit
(** Bounds-checked flavours for management paths; raise
    [Invalid_argument] on an out-of-range word. *)

val path : t -> string option
(** The backing file, if any. *)

val msync : t -> int
(** Flush an [Shm] mapping to its file (synchronous).  Returns 0 or a
    negated errno; 0 and a no-op on [Heap]. *)

type advice = Madv_normal | Madv_willneed | Madv_dontneed

val madvise : t -> advice -> int
(** Paging advice for an [Shm] mapping; 0 and a no-op on [Heap]. *)

val unlink : t -> unit
(** Remove the backing file (best-effort); no-op on [Heap]. *)

val pid_alive : int -> bool
(** [kill(pid, 0)] liveness probe.  A zombie counts as alive, so a
    prober that forked its peer must reap it before trusting [false]. *)
