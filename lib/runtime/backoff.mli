(** Bounded exponential backoff — the caller-side retry discipline for
    [Ipc_intf.Errc.retry] backpressure from the channel path.  Pure
    cpu-relax spinning: no clock, no allocation, deterministic under
    the test harness. *)

type t

val create : ?min_spin:int -> ?max_spin:int -> unit -> t
(** Pauses start at [min_spin] cpu-relax iterations (default 32) and
    double per {!once} up to [max_spin] (default 8192). *)

val once : t -> unit
(** Pause at the current length, then double it (saturating). *)

val reset : t -> unit
(** Back to [min_spin] — call after a successful attempt. *)

val spun : t -> int
(** Total iterations paused since creation or {!reset}. *)

val with_retry : ?attempts:int -> ?min_spin:int -> ?max_spin:int ->
  (unit -> int) -> int
(** [with_retry f] runs [f] until it returns anything other than
    [Errc.retry], backing off between attempts, at most [attempts]
    (default 10) runs.  Returns the last code — still [Errc.retry] if
    the budget ran out. *)
