(** Per-client cross-domain call channel: a preallocated submission ring
    ({!Spsc_ring.Raw}) of {!Request_slab} cells plus a per-cell
    completion state machine.  After warm-up a call allocates nothing
    and takes no locks unless a side actually has to sleep.

    One producer domain per channel (the client that connected); at any
    instant one consumer, serialised by an internal try-lock so an idle
    sibling shard can steal the channel safely. *)

type t

val create :
  ?slab_capacity:int ->
  ?ring_capacity:int ->
  ?spin:int ->
  ?max_batch:int ->
  doorbell:Doorbell.t ->
  shard:int ->
  arg_words:int ->
  unit ->
  t
(** [ring_capacity] must be a positive power of two.  [spin] is the
    client's spin/yield budget before it parks on the request cell. *)

val call : t -> ep:int -> int array -> int
(** Client round trip: acquire a cell, copy [args] in, submit, ring the
    doorbell, wait (spin then park), copy results back, recycle the
    cell.  Returns the last argument word (the RC slot).  Owner domain
    only. *)

val try_drain : t -> run:(int -> int array -> unit) -> int
(** Pop up to [max_batch] requests, run each, then issue one deferred
    pass of wakeups for clients that parked.  Returns the number
    drained; 0 if empty or another consumer holds the channel. *)

val pending : t -> bool
(** True if the submission ring is non-empty. *)

val shard : t -> int
val submitted : t -> int
val drained : t -> int

val slab_grows : t -> int
(** Times the request slab had to grow — zero in a warmed-up steady
    state. *)

val slab_created : t -> int
