(** Per-client cross-domain call channel: a preallocated submission ring
    ({!Spsc_ring.Raw}) of {!Request_slab} cells plus a per-cell
    completion state machine.  After warm-up a call allocates nothing
    and takes no locks unless a side actually has to sleep.

    One producer domain per channel (the client that connected); at any
    instant one consumer, serialised by an internal try-lock so an idle
    sibling shard can steal the channel safely. *)

type t

val create :
  ?slab_capacity:int ->
  ?slab_max:int ->
  ?ring_capacity:int ->
  ?spin:int ->
  ?max_batch:int ->
  doorbell:Doorbell.t ->
  shard:int ->
  arg_words:int ->
  unit ->
  t
(** [ring_capacity] must be a positive power of two.  [spin] is the
    client's spin/yield budget before it parks on the request cell.
    [slab_max] caps the request slab (default unbounded): once every
    cell is in flight, further calls bounce with [Errc.retry] instead
    of growing the slab. *)

val call : t -> ep:int -> int array -> int
(** Client round trip: acquire a cell, copy [args] in, submit, ring the
    doorbell, wait (spin then park), copy results back, recycle the
    cell.  Returns the last argument word (the RC slot).  Owner domain
    only.  Returns [Errc.retry] — without submitting — when the
    submission ring is full or a [slab_max]-bounded slab is exhausted;
    see {!Backoff} for the caller-side retry discipline. *)

val call_deadline : t -> ep:int -> deadline:int -> int array -> int
(** Like {!call}, but bounded in wall-clock time: [deadline] is in
    {e nanoseconds}.  The wait is the [spin] budget, then a timed park
    ({!Doorbell.timed_wait}: sched_yield rounds, then nanosleep naps
    capped at 50 µs — which also bounds deadline overshoot); the whole
    wait allocates nothing.  On expiry the cell is abandoned to the
    server via a CAS ownership handoff and the call returns
    [Errc.timed_out] (also written to the RC slot); any late server
    reply is discarded and the cell reclaimed exactly once.  If the
    reply races the deadline, completion wins and the call returns
    normally.  Owner domain only. *)

val try_drain : t -> run:(int -> int array -> unit) -> int
(** Pop up to [max_batch] requests, run each, then issue one deferred
    pass of wakeups for clients that parked.  Abandoned cells are
    skipped (handler not run) and reclaimed.  Returns the number
    drained; 0 if empty or another consumer holds the channel. *)

val pending : t -> bool
(** True if the submission ring is non-empty. *)

val shard : t -> int
val submitted : t -> int
val drained : t -> int

val timeouts : t -> int
(** Deadline calls that expired and abandoned their cell. *)

val rejected : t -> int
(** Calls bounced with [Errc.retry] (ring full or slab exhausted). *)

val slab_grows : t -> int
(** Times the request slab had to grow — zero in a warmed-up steady
    state. *)

val slab_created : t -> int

val slab_reclaimed : t -> int
(** Abandoned cells the server returned through the slab's reclaim
    stack. *)
