(* A slab of preallocated, serially reused cross-domain request cells —
   the runtime analogue of the paper's per-processor CD pool.

   A cell carries the whole request inline: the entry point, an
   [arg_words]-slot argument array the handler mutates in place, and a
   completion state machine in a single [int Atomic.t].  The waiting
   half (mutex + condvar) is preallocated with the cell, so a call that
   has to park still allocates nothing.

   Cells are owned by one client domain.  The free list is a LIFO stack
   touched only by that owner (acquire before submission, release after
   completion), so reuse is serial: the most recently completed cell —
   the one whose args are hottest in cache — services the next call,
   exactly the warmth property the paper gets from recycling CDs.  The
   server side only ever sees cells in flight; it never allocates or
   frees them — with one exception, modelled on the paper's §4.5.6 CD
   reclamation on termination: a cell whose client *abandoned* it (call
   deadline expired) is handed to the server by a CAS on the state word,
   and the server returns it through [reclaim], a lock-free side stack
   the owner drains back into its pool on a later acquire.  Ownership
   of every cell is therefore always unambiguous: the owner holds it,
   the server holds it, or it sits in exactly one of the two free
   structures — recycled exactly once. *)

(* Completion states.  Transitions:
     Free -(client: acquire+fill)-> Pending
     Pending -(client: spin budget exhausted, CAS)-> Parked
     Pending -(client: deadline expired, CAS)-> Abandoned
     Pending|Parked -(server: exchange after running handler)-> Done
     Done -(client: observe result, release)-> Free
     Abandoned -(server: discard reply, reclaim)-> Free (via side stack)
   The Pending->Abandoned CAS is the ownership handoff: if it wins, the
   client never touches the cell again and the server owns recycling it;
   if it loses (the server's Done got there first), the reply stands and
   the client keeps ownership. *)
let state_free = 0
let state_pending = 1
let state_parked = 2
let state_done = 3
let state_abandoned = 4

type cell = {
  index : int;  (** creation order; [-1] for ring dummies *)
  args : int array;
  mutable ep : int;
  state : int Atomic.t;
  cm : Mutex.t;  (** parking mutex, preallocated *)
  cc : Condition.t;  (** parking condvar, preallocated *)
}

type t = {
  arg_words : int;
  max_cells : int;  (** growth cap for [try_acquire]; [max_int] = unbounded *)
  mutable pool : cell array;  (** free stack; slots [0..pool_len-1] live *)
  mutable pool_len : int;
  mutable created : int;  (** cells ever created, including the seed *)
  mutable grows : int;  (** acquires that found the pool empty *)
  reclaim_list : cell list Atomic.t;
      (** abandoned cells returned by the server; drained by the owner *)
  reclaim_len : int Atomic.t;
  reclaimed : int Atomic.t;  (** total cells ever pushed through reclaim *)
}

let make_cell ~arg_words ~index =
  {
    index;
    args = Array.make arg_words 0;
    ep = -1;
    state = Atomic.make state_free;
    cm = Mutex.create ();
    cc = Condition.create ();
  }

let dummy_cell ~arg_words = make_cell ~arg_words ~index:(-1)

let create ?(capacity = 16) ?(max_cells = max_int) ~arg_words () =
  (* Same validation and message shape as [Spsc_ring.create]: slab
     capacities pair with ring capacities, so the power-of-two contract
     is one contract (and pre-PR9 it lived only in doc comments). *)
  Spsc_ring.validate_capacity "Request_slab.create" capacity;
  if arg_words <= 0 then invalid_arg "Request_slab.create: arg_words must be > 0";
  if max_cells < capacity then
    invalid_arg "Request_slab.create: max_cells must be >= capacity";
  let pool = Array.init capacity (fun i -> make_cell ~arg_words ~index:i) in
  {
    arg_words;
    max_cells;
    pool;
    pool_len = capacity;
    created = capacity;
    grows = 0;
    reclaim_list = Atomic.make [];
    reclaim_len = Atomic.make 0;
    reclaimed = Atomic.make 0;
  }

let arg_words t = t.arg_words
let created t = t.created

(* Owner only.  Allocation-free exhaustion probe for the warm call path:
   true iff [acquire] would have to mint a cell a bounded slab is not
   allowed to mint.  (A concurrent [reclaim] can only turn a [true] into
   a stale positive — the caller's [Errc.retry] is transient anyway.) *)
let exhausted t =
  t.pool_len = 0 && Atomic.get t.reclaim_len = 0 && t.created >= t.max_cells
let grows t = t.grows
let available t = t.pool_len + Atomic.get t.reclaim_len
let in_flight t = t.created - t.pool_len - Atomic.get t.reclaim_len
let reclaimed t = Atomic.get t.reclaimed

let pool_push t cell =
  let n = t.pool_len in
  if n = Array.length t.pool then begin
    let grown = Array.make (max 4 (2 * n)) cell in
    Array.blit t.pool 0 grown 0 n;
    t.pool <- grown
  end;
  t.pool.(n) <- cell;
  t.pool_len <- n + 1

(* Owner only.  Pull everything the server has reclaimed back into the
   pool.  Cold path: only taken when the LIFO stack is dry. *)
let rec drain_reclaimed t =
  let cur = Atomic.get t.reclaim_list in
  match cur with
  | [] -> ()
  | _ ->
      if Atomic.compare_and_set t.reclaim_list cur [] then begin
        List.iter
          (fun cell ->
            Atomic.decr t.reclaim_len;
            pool_push t cell)
          cur
      end
      else drain_reclaimed t

(* Owner only.  Warm path: array read + length decrement, no allocation.
   Returns [None] only when the slab is at its growth cap with every
   cell in flight — the explicit pool-exhaustion signal the caller turns
   into [Errc.retry]. *)
let try_acquire t =
  if t.pool_len = 0 then drain_reclaimed t;
  if t.pool_len = 0 then
    if t.created >= t.max_cells then None
    else begin
      (* Pool exhausted but under the cap: grow, like Frank creating a
         CD.  Cold path. *)
      t.grows <- t.grows + 1;
      let c = make_cell ~arg_words:t.arg_words ~index:t.created in
      t.created <- t.created + 1;
      Some c
    end
  else begin
    let n = t.pool_len - 1 in
    t.pool_len <- n;
    Some t.pool.(n)
  end

(* Owner only.  Unbounded flavour: always yields a cell (ignores
   [max_cells]), kept for callers that prefer growth to backpressure. *)
let acquire t =
  if t.pool_len = 0 then drain_reclaimed t;
  if t.pool_len = 0 then begin
    t.grows <- t.grows + 1;
    let c = make_cell ~arg_words:t.arg_words ~index:t.created in
    t.created <- t.created + 1;
    c
  end
  else begin
    let n = t.pool_len - 1 in
    t.pool_len <- n;
    t.pool.(n)
  end

(* Owner only.  Resets the completion state; the cell must be out of the
   server's hands (state [Done], or never submitted). *)
let release t cell =
  Atomic.set cell.state state_free;
  pool_push t cell

(* Any domain.  Return an [Abandoned] cell whose client has forsaken it:
   the CAS handoff on the state word made the caller the sole owner, so
   resetting the state and pushing onto the side stack cannot race the
   client.  Lock-free; the cons allocation only happens on the fault
   path, never on a warm call. *)
let reclaim t cell =
  Atomic.set cell.state state_free;
  Atomic.incr t.reclaim_len;
  Atomic.incr t.reclaimed;
  let rec push () =
    let cur = Atomic.get t.reclaim_list in
    if not (Atomic.compare_and_set t.reclaim_list cur (cell :: cur)) then
      push ()
  in
  push ()
