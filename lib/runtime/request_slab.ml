(* A slab of preallocated, serially reused cross-domain request cells —
   the runtime analogue of the paper's per-processor CD pool.

   A cell carries the whole request inline: the entry point, an
   [arg_words]-slot argument array the handler mutates in place, and a
   completion state machine in a single [int Atomic.t].  The waiting
   half (mutex + condvar) is preallocated with the cell, so a call that
   has to park still allocates nothing.

   Cells are owned by one client domain.  The free list is a LIFO stack
   touched only by that owner (acquire before submission, release after
   completion), so reuse is serial: the most recently completed cell —
   the one whose args are hottest in cache — services the next call,
   exactly the warmth property the paper gets from recycling CDs.  The
   server side only ever sees cells in flight; it never allocates or
   frees them. *)

(* Completion states.  Transitions:
     Free -(client: acquire+fill)-> Pending
     Pending -(client: spin budget exhausted, CAS)-> Parked
     Pending|Parked -(server: exchange after running handler)-> Done
     Done -(client: observe result, release)-> Free *)
let state_free = 0
let state_pending = 1
let state_parked = 2
let state_done = 3

type cell = {
  index : int;  (** creation order; [-1] for ring dummies *)
  args : int array;
  mutable ep : int;
  state : int Atomic.t;
  cm : Mutex.t;  (** parking mutex, preallocated *)
  cc : Condition.t;  (** parking condvar, preallocated *)
}

type t = {
  arg_words : int;
  mutable pool : cell array;  (** free stack; slots [0..pool_len-1] live *)
  mutable pool_len : int;
  mutable created : int;  (** cells ever created, including the seed *)
  mutable grows : int;  (** acquires that found the pool empty *)
}

let make_cell ~arg_words ~index =
  {
    index;
    args = Array.make arg_words 0;
    ep = -1;
    state = Atomic.make state_free;
    cm = Mutex.create ();
    cc = Condition.create ();
  }

let dummy_cell ~arg_words = make_cell ~arg_words ~index:(-1)

let create ?(capacity = 16) ~arg_words () =
  if capacity <= 0 then invalid_arg "Request_slab.create: capacity must be > 0";
  if arg_words <= 0 then invalid_arg "Request_slab.create: arg_words must be > 0";
  let pool = Array.init capacity (fun i -> make_cell ~arg_words ~index:i) in
  { arg_words; pool; pool_len = capacity; created = capacity; grows = 0 }

let arg_words t = t.arg_words
let created t = t.created
let grows t = t.grows
let available t = t.pool_len
let in_flight t = t.created - t.pool_len

(* Owner only.  Warm path: array read + length decrement, no allocation. *)
let acquire t =
  if t.pool_len = 0 then begin
    (* Pool exhausted: grow, like Frank creating a CD.  Cold path. *)
    t.grows <- t.grows + 1;
    let c = make_cell ~arg_words:t.arg_words ~index:t.created in
    t.created <- t.created + 1;
    c
  end
  else begin
    let n = t.pool_len - 1 in
    t.pool_len <- n;
    t.pool.(n)
  end

(* Owner only.  Resets the completion state; the cell must be out of the
   server's hands (state [Done], or never submitted). *)
let release t cell =
  Atomic.set cell.state state_free;
  let n = t.pool_len in
  if n = Array.length t.pool then begin
    let grown = Array.make (max 4 (2 * n)) cell in
    Array.blit t.pool 0 grown 0 n;
    t.pool <- grown
  end;
  t.pool.(n) <- cell;
  t.pool_len <- n + 1
