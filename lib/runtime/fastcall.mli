(** The PPC design pattern on OCaml 5 domains: lock-free service table
    of versioned entry-point slots, per-domain frame pools in
    domain-local storage, 8-word argument convention.  Local calls take
    no locks and allocate nothing (the pooled context, trap-frame
    cleanup and array-backed pool make this literal — a warm call writes
    zero minor-heap words).

    Entry points carry the full {!Ipc_intf.Lifecycle} state machine:
    soft-kill (stop new calls, drain calls in flight, then free the
    slot), hard-kill (also abort calls in flight: their return code
    becomes [Ipc_intf.Errc.killed]), and on-line handler {!exchange}.
    Freed IDs are recycled; the per-slot generation counter makes stale
    {!ep} handles detectable across reuse.

    Cross-domain calls have two embodiments: the {e channel path}
    (preallocated request slabs + per-client SPSC rings + doorbell +
    batched, optionally sharded servers; zero allocation after warm-up)
    and the {e legacy path} (allocating MPSC + per-request condvar),
    kept as the baseline the benchmarks compare against. *)

val max_entry_points : int
val arg_words : int

type frame = { scratch : Bytes.t; mutable frame_calls : int }
type ctx = { frame : frame; mutable domain_index : int }
type handler = ctx -> int array -> unit

type t

type ep
(** A versioned entry-point handle: slot ID plus the generation it was
    minted under.  Operations on a handle whose slot has since been
    freed (and possibly re-registered) fail with [Ipc_intf.Errc]
    codes — never reach the slot's next tenant. *)

exception No_entry of int

val create : unit -> t

val register : t -> handler -> int
(** Bind a free entry point (recycling killed-and-drained IDs) and
    return its raw ID.  Management path, serialised with the other
    lifecycle operations; safe while other domains are calling. *)

val register_ep : t -> handler -> ep
(** [register], but returning the versioned handle. *)

val ep_id : ep -> int
(** The raw ID under a handle — what gets published to a registry. *)

val registered : t -> int
(** Live (registered and not yet freed) entry points. *)

val call : t -> ep:int -> int array -> int
(** Local synchronous call by raw ID: returns [args.(7)] (the RC slot).
    Raises {!No_entry} on an unbound ID; a killed-but-draining ID
    returns [Ipc_intf.Errc.killed]. *)

val call_h : t -> ep -> int array -> int
(** Local synchronous call through a versioned handle.  Never raises:
    stale handles get [Ipc_intf.Errc.no_entry], killed ones
    [Ipc_intf.Errc.killed]. *)

val local_calls : t -> int
(** Calls completed by the current domain. *)

val warm_pool : t -> int -> unit
(** Pre-populate the calling domain's context pool with [n] fresh
    contexts (the paper's grow-pool management op). *)

val trim_pool : t -> max_ctxs:int -> int
(** Shrink the calling domain's context pool to at most [max_ctxs]
    pooled contexts; returns how many were retired (the paper's
    Section 2 reclaim of peak-time resources). *)

val pool_ctxs : t -> int
(** Contexts currently pooled by the calling domain. *)

(** {1 Lifecycle (paper Section 4.5.2 and 4.5.6)}

    All return an [Ipc_intf.Errc] code.  Kills never block: the slot is
    freed by the last call to drain (or immediately when idle). *)

val soft_kill : t -> ep:int -> int
(** Stop accepting calls; calls in flight complete and their results
    stand; the slot is freed once they drain. *)

val hard_kill : t -> ep:int -> int
(** Stop accepting calls and abort calls in flight: a domain cannot be
    preempted mid-handler, so the handler runs out but its caller sees
    [Ipc_intf.Errc.killed] instead of its result. *)

val exchange : t -> ep:int -> handler -> int
(** Atomically swap the handler under a live ID.  Calls already in
    flight finish with the routine they latched at acceptance. *)

val soft_kill_h : t -> ep -> int
val hard_kill_h : t -> ep -> int
val exchange_h : t -> ep -> handler -> int
(** Handle flavours: additionally fail with [Ipc_intf.Errc.no_entry]
    when the handle is stale. *)

val in_flight : t -> ep:int -> int
(** Calls currently executing on the entry point (weak snapshot). *)

val in_flight_h : t -> ep -> int

val lifecycle : t -> ep:int -> Ipc_intf.Lifecycle.status option
(** [None] when the slot is free. *)

(** {1 Cross-domain: the channel path} *)

type channel_server
(** One or more server shard domains draining per-client channels. *)

type client
(** A per-calling-domain handle: one channel to every shard.  Use only
    from the domain that [connect]ed (submission rings are
    single-producer). *)

val spawn_channel_server :
  ?shards:int -> ?server_spin:int -> ?max_batch:int -> t -> channel_server
(** Spawn [shards] server domains (default 1).  Each drains up to
    [max_batch] requests per channel sweep under its shard ticket,
    steals from idle siblings, spins for [server_spin] iterations when
    dry (default scales with the machine's parallelism), then parks on
    its doorbell. *)

val connect :
  ?slab_capacity:int ->
  ?ring_capacity:int ->
  ?client_spin:int ->
  ?inline_uncontended:bool ->
  channel_server ->
  client
(** Register this domain with every shard.  [ring_capacity] must be a
    power of two; [client_spin] is the spin budget before a call parks
    on its request cell (default scales with the machine's
    parallelism).  [inline_uncontended] (default [true]) lets a call
    execute on the caller's domain when the target shard's ticket is
    free — the paper's PPC discipline; pass [false] to force every call
    through the queued path (benchmarking the batching machinery). *)

val channel_call : client -> ep:int -> int array -> int
(** Cross-domain call over the channel path: routed to shard
    [ep mod shards].  Uncontended calls run inline on the caller's
    domain under the shard ticket; contended calls queue on this
    client's SPSC channel for batched service.  Allocation-free after
    warm-up either way.  Returns [args.(7)].  Never raises on lifecycle
    grounds: unbound entry points answer [Ipc_intf.Errc.no_entry], and
    calls refused by a quiescing server answer
    [Ipc_intf.Errc.killed]. *)

val client_inlined : client -> int
(** Calls this client ran inline under a free shard ticket. *)

val shutdown_channel_server : channel_server -> unit
(** Quiesce, then join: stop accepting new channel calls (refused calls
    get [Ipc_intf.Errc.killed]), wait until every call already accepted
    has completed — the shards keep serving during the wait — then stop
    and join the shard domains.  No accepted call is lost. *)

val channel_served : channel_server -> int
val channel_batches : channel_server -> int
(** Non-empty sweeps; [channel_served / channel_batches] is the mean
    batch size. *)

val channel_steals : channel_server -> int
(** Requests completed by a non-owner shard. *)

val channel_doorbell_stats : channel_server -> int * int * int
(** [(rings, wakes, parks)] summed over shards: lock-free rings, rings
    that had to wake a parked shard, and actual sleeps. *)

val client_slab_grows : client -> int
(** Slab growth on this client — zero once warmed up. *)

(** {1 Cross-domain: the legacy MPSC path (benchmark baseline)} *)

type server_domain

val spawn_server : t -> server_domain
(** A domain that serves cross-domain requests from an MPSC queue. *)

val cross_call : server_domain -> ep:int -> int array -> int
(** Enqueue on the server domain and spin/yield until completion.
    Allocates a request record, mutex and condvar per call. *)

val shutdown_server : server_domain -> unit
val served : server_domain -> int
