(** The PPC design pattern on OCaml 5 domains: lock-free service table,
    per-domain frame pools in domain-local storage, 8-word argument
    convention.  Local calls take no locks and allocate nothing (the
    pooled context, trap-frame cleanup and array-backed pool make this
    literal — a warm call writes zero minor-heap words).

    Cross-domain calls have two embodiments: the {e channel path}
    (preallocated request slabs + per-client SPSC rings + doorbell +
    batched, optionally sharded servers; zero allocation after warm-up)
    and the {e legacy path} (allocating MPSC + per-request condvar),
    kept as the baseline the benchmarks compare against. *)

val max_entry_points : int
val arg_words : int

type frame = { scratch : Bytes.t; mutable frame_calls : int }
type ctx = { frame : frame; mutable domain_index : int }
type handler = ctx -> int array -> unit

type t

exception No_entry of int

val create : unit -> t

val register : t -> handler -> int
(** Bind the next entry point.  Management path: register before domains
    start calling. *)

val registered : t -> int

val call : t -> ep:int -> int array -> int
(** Local synchronous call: returns [args.(7)] (the RC slot). *)

val local_calls : t -> int
(** Calls completed by the current domain. *)

(** {1 Cross-domain: the channel path} *)

type channel_server
(** One or more server shard domains draining per-client channels. *)

type client
(** A per-calling-domain handle: one channel to every shard.  Use only
    from the domain that [connect]ed (submission rings are
    single-producer). *)

val spawn_channel_server :
  ?shards:int -> ?server_spin:int -> ?max_batch:int -> t -> channel_server
(** Spawn [shards] server domains (default 1).  Each drains up to
    [max_batch] requests per channel sweep under its shard ticket,
    steals from idle siblings, spins for [server_spin] iterations when
    dry (default scales with the machine's parallelism), then parks on
    its doorbell. *)

val connect :
  ?slab_capacity:int ->
  ?ring_capacity:int ->
  ?client_spin:int ->
  ?inline_uncontended:bool ->
  channel_server ->
  client
(** Register this domain with every shard.  [ring_capacity] must be a
    power of two; [client_spin] is the spin budget before a call parks
    on its request cell (default scales with the machine's
    parallelism).  [inline_uncontended] (default [true]) lets a call
    execute on the caller's domain when the target shard's ticket is
    free — the paper's PPC discipline; pass [false] to force every call
    through the queued path (benchmarking the batching machinery). *)

val channel_call : client -> ep:int -> int array -> int
(** Cross-domain call over the channel path: routed to shard
    [ep mod shards].  Uncontended calls run inline on the caller's
    domain under the shard ticket; contended calls queue on this
    client's SPSC channel for batched service.  Allocation-free after
    warm-up either way.  Returns [args.(7)]. *)

val client_inlined : client -> int
(** Calls this client ran inline under a free shard ticket. *)

val shutdown_channel_server : channel_server -> unit
(** Stop and join the shard domains.  Calls still in flight on other
    domains when this is invoked are not waited for — quiesce clients
    first. *)

val channel_served : channel_server -> int
val channel_batches : channel_server -> int
(** Non-empty sweeps; [channel_served / channel_batches] is the mean
    batch size. *)

val channel_steals : channel_server -> int
(** Requests completed by a non-owner shard. *)

val channel_doorbell_stats : channel_server -> int * int * int
(** [(rings, wakes, parks)] summed over shards: lock-free rings, rings
    that had to wake a parked shard, and actual sleeps. *)

val client_slab_grows : client -> int
(** Slab growth on this client — zero once warmed up. *)

(** {1 Cross-domain: the legacy MPSC path (benchmark baseline)} *)

type server_domain

val spawn_server : t -> server_domain
(** A domain that serves cross-domain requests from an MPSC queue. *)

val cross_call : server_domain -> ep:int -> int array -> int
(** Enqueue on the server domain and spin/yield until completion.
    Allocates a request record, mutex and condvar per call. *)

val shutdown_server : server_domain -> unit
val served : server_domain -> int
