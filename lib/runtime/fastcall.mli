(** The PPC design pattern on OCaml 5 domains: lock-free service table
    of versioned entry-point slots, per-domain frame pools in
    domain-local storage, 8-word argument convention.  Local calls take
    no locks and allocate nothing (the pooled context, trap-frame
    cleanup and array-backed pool make this literal — a warm call writes
    zero minor-heap words).

    Entry points carry the full {!Ipc_intf.Lifecycle} state machine:
    soft-kill (stop new calls, drain calls in flight, then free the
    slot), hard-kill (also abort calls in flight: their return code
    becomes [Ipc_intf.Errc.killed]), and on-line handler {!exchange}.
    Freed IDs are recycled; the per-slot generation counter makes stale
    {!ep} handles detectable across reuse.

    {b Failure containment.}  A handler that raises is trapped on every
    path — local call, inline channel call, shard drain — and its caller
    answers [Ipc_intf.Errc.handler_fault]; the exception never crosses
    the call boundary, so a faulty service cannot take down a caller
    domain or a server shard.  Consecutive faults on one entry point
    trip a circuit breaker that soft-kills it (see {!create}); the
    channel path additionally offers per-call deadlines
    ({!channel_call_deadline}), [Errc.retry] backpressure, and optional
    shard supervision with automatic respawn ({!spawn_channel_server}).

    Cross-domain calls have two embodiments: the {e channel path}
    (preallocated request slabs + per-client SPSC rings + doorbell +
    batched, optionally sharded servers; zero allocation after warm-up)
    and the {e legacy path} (allocating MPSC + per-request condvar),
    kept as the baseline the benchmarks compare against. *)

val max_entry_points : int
val arg_words : int

type frame = { scratch : Bytes.t; mutable frame_calls : int }
type ctx = { frame : frame; mutable domain_index : int }
type handler = ctx -> int array -> unit

type t

type ep
(** A versioned entry-point handle: slot ID plus the generation it was
    minted under.  Operations on a handle whose slot has since been
    freed (and possibly re-registered) fail with [Ipc_intf.Errc]
    codes — never reach the slot's next tenant. *)

exception No_entry of int

val create : ?breaker_threshold:int -> unit -> t
(** [breaker_threshold] (default 8) is the circuit breaker: after that
    many {e consecutive} handler faults on one entry point (any success
    resets the count), the entry point is automatically soft-killed —
    it drains and frees exactly as an explicit {!soft_kill} would. *)

val register : t -> handler -> int
(** Bind a free entry point (recycling killed-and-drained IDs) and
    return its raw ID.  Management path, serialised with the other
    lifecycle operations; safe while other domains are calling.  A
    recycled slot starts with a clean fault history. *)

val register_ep : t -> handler -> ep
(** [register], but returning the versioned handle. *)

val ep_id : ep -> int
(** The raw ID under a handle — what gets published to a registry. *)

val ep_to_wire : ep -> int
(** The handle as one {!Ipc_intf.Wire_abi} word (slot + generation), the
    form it crosses a shared-memory segment in.  Staleness detection
    survives the round trip. *)

val ep_of_wire : int -> ep
(** Inverse of {!ep_to_wire}.  A forged or stale word decodes to a
    handle whose operations fail with [Errc] codes, never to another
    tenant's live service. *)

val registered : t -> int
(** Live (registered and not yet freed) entry points. *)

val call : t -> ep:int -> int array -> int
(** Local synchronous call by raw ID: returns [args.(7)] (the RC slot).
    Raises {!No_entry} on an unbound ID — the only exception this
    function can raise.  Error codes in the RC slot:
    [Ipc_intf.Errc.killed] for a killed-but-draining ID (or a hard kill
    landing mid-call), [Ipc_intf.Errc.handler_fault] when the handler
    raised (the exception is contained, never propagated). *)

val call_h : t -> ep -> int array -> int
(** Local synchronous call through a versioned handle.  Never raises —
    including when the handler itself raises.  Error codes:
    [Ipc_intf.Errc.no_entry] for a stale or freed handle,
    [Ipc_intf.Errc.killed] for a killed-but-draining entry point (or a
    hard kill landing mid-call), [Ipc_intf.Errc.handler_fault] for a
    contained handler exception. *)

val local_calls : t -> int
(** Calls completed by the current domain. *)

val warm_pool : t -> int -> unit
(** Pre-populate the calling domain's context pool with [n] fresh
    contexts (the paper's grow-pool management op). *)

val trim_pool : t -> max_ctxs:int -> int
(** Shrink the calling domain's context pool to at most [max_ctxs]
    pooled contexts; returns how many were retired (the paper's
    Section 2 reclaim of peak-time resources). *)

val pool_ctxs : t -> int
(** Contexts currently pooled by the calling domain. *)

(** {1 Lifecycle (paper Section 4.5.2 and 4.5.6)}

    All return an [Ipc_intf.Errc] code.  Kills never block: the slot is
    freed by the last call to drain (or immediately when idle). *)

val soft_kill : t -> ep:int -> int
(** Stop accepting calls; calls in flight complete and their results
    stand; the slot is freed once they drain. *)

val hard_kill : t -> ep:int -> int
(** Stop accepting calls and abort calls in flight: a domain cannot be
    preempted mid-handler, so the handler runs out but its caller sees
    [Ipc_intf.Errc.killed] instead of its result. *)

val exchange : t -> ep:int -> handler -> int
(** Atomically swap the handler under a live ID.  Calls already in
    flight finish with the routine they latched at acceptance. *)

val soft_kill_h : t -> ep -> int
val hard_kill_h : t -> ep -> int
val exchange_h : t -> ep -> handler -> int
(** Handle flavours: additionally fail with [Ipc_intf.Errc.no_entry]
    when the handle is stale. *)

val in_flight : t -> ep:int -> int
(** Calls currently executing on the entry point (weak snapshot). *)

val in_flight_h : t -> ep -> int

val lifecycle : t -> ep:int -> Ipc_intf.Lifecycle.status option
(** [None] when the slot is free. *)

(** {1 Fault-containment observability} *)

val handler_faults : t -> int
(** Handler exceptions contained table-wide. *)

val breaker_trips : t -> int
(** Entry points auto-soft-killed by the circuit breaker. *)

val breaker_threshold : t -> int

val ep_faults : t -> ep:int -> int
(** Handler faults on this entry point under its current tenant. *)

(** {1 Amortized batch acceptance}

    The machinery the channel path uses to pay the containment tax per
    {e batch} instead of per call, exposed so its admission invariant
    can be property-tested against the per-call model.  A {!Batch.hold}
    carries one in-flight reservation on one entry point; while it is
    held, {!Batch.call} admits a call with a single generation-stamp
    compare (the slot's state word must equal the word stamped at
    acquisition).  Any lifecycle transition moves the state word, so a
    call can {e never} be admitted after a kill was observable: the
    compare fails, the hold is retired (letting the killed slot drain),
    and acceptance re-runs from scratch.  The staleness window is the
    drain bookkeeping only — a killed slot frees at most one batch
    late — never fault visibility.  A hold has a single owner at a
    time (the channel path guards each shard's hold with the shard
    ticket); it is not itself thread-safe. *)

module Batch : sig
  type hold

  val hold : unit -> hold
  (** A fresh, empty hold. *)

  val call : t -> hold -> ep:int -> int array -> int
  (** Like {!call} (same error taxonomy, including raising {!No_entry}
      on unbound IDs), but admitted through the hold: warm calls on the
      held entry point cost three atomic loads and no RMW.  Calling a
      different entry point retires the current hold and acquires a new
      one. *)

  val retire : t -> hold -> unit
  (** Release the hold's in-flight reservation (a no-op when empty).
      Callers must retire before abandoning a hold, or the held slot
      can never drain after a kill. *)

  val held : hold -> int
  (** The slot ID currently held, or [-1]. *)
end

(** {1 Cross-domain: the channel path} *)

type channel_server
(** One or more server shard domains draining per-client channels. *)

type client
(** A per-calling-domain handle: one channel to every shard.  Use only
    from the domain that [connect]ed (submission rings are
    single-producer). *)

val spawn_channel_server :
  ?shards:int ->
  ?server_spin:int ->
  ?max_batch:int ->
  ?supervise:bool ->
  ?supervisor_poll:int ->
  t ->
  channel_server
(** Spawn [shards] server domains (default 1).  Each drains up to
    [max_batch] requests per channel sweep under its shard ticket,
    steals from idle siblings, spins for [server_spin] iterations when
    dry (default scales with the machine's parallelism), then parks on
    its doorbell.

    [supervise] (default [false]) also spawns a supervisor domain that
    polls every shard's heartbeat word (every [supervisor_poll]
    cpu-relax iterations).  A shard found dead (killed via
    {!kill_shard}) or wedged (heartbeat frozen across two polls with
    work visibly pending) has its reachable in-flight requests failed
    with [Ipc_intf.Errc.handler_fault] — waking any parked clients —
    and is respawned so subsequent calls succeed. *)

val connect :
  ?slab_capacity:int ->
  ?slab_max:int ->
  ?ring_capacity:int ->
  ?client_spin:int ->
  ?inline_uncontended:bool ->
  channel_server ->
  client
(** Register this domain with every shard.  [ring_capacity] must be a
    power of two; [client_spin] is the spin budget before a call parks
    on its request cell (default scales with the machine's
    parallelism).  [slab_max] caps each per-shard request slab: once
    every cell is in flight further calls answer [Ipc_intf.Errc.retry]
    instead of growing the slab (default unbounded).
    [inline_uncontended] (default [true]) lets a call execute on the
    caller's domain when the target shard's ticket is free — the
    paper's PPC discipline; pass [false] to force every call through
    the queued path (benchmarking the batching machinery). *)

val channel_call : client -> ep:int -> int array -> int
(** Cross-domain call over the channel path: routed to shard
    [ep mod shards].  Uncontended calls run inline on the caller's
    domain under the shard ticket; contended calls queue on this
    client's SPSC channel for batched service.  Allocation-free after
    warm-up either way.  Returns [args.(7)].  Never raises: unbound
    entry points answer [Ipc_intf.Errc.no_entry], calls refused by a
    quiescing server [Ipc_intf.Errc.killed], contained handler
    exceptions [Ipc_intf.Errc.handler_fault], and a full submission
    ring or exhausted bounded slab [Ipc_intf.Errc.retry] (see
    {!Backoff}). *)

val channel_call_deadline :
  client -> ep:int -> deadline:int -> int array -> int
(** {!channel_call} with a wait bounded in wall-clock time: always
    queued (never inline).  [deadline] is in {e nanoseconds}: the call
    spins briefly, then parks in timed naps ({!Doorbell.timed_wait} —
    sched_yield rounds, then nanosleeps capped at 50 µs, which also
    bounds deadline overshoot), allocating nothing.  On expiry the
    request cell is abandoned to the server via a CAS ownership handoff
    and the call returns [Ipc_intf.Errc.timed_out]; the late reply, if
    any, is discarded and the cell reclaimed exactly once.  All
    {!channel_call} error codes apply too. *)

val client_inlined : client -> int
(** Calls this client ran inline under a free shard ticket. *)

val kill_shard : channel_server -> shard:int -> unit
(** Fault injector: make the shard domain exit as if it had died,
    leaving its backlog and parked clients stranded.  Pair with
    [~supervise:true] to exercise detection and respawn, or with
    {!channel_call_deadline} to exercise client-side timeouts. *)

val inject_doorbell_delay : channel_server -> shard:int -> int -> unit
(** Fault injector: stall every ring of the shard's doorbell by [n]
    cpu-relax iterations, widening the park/ring race window
    ({!Doorbell.inject_delay}).  [0] restores normal behaviour. *)

val shutdown_channel_server : channel_server -> unit
(** Quiesce, then join: stop accepting new channel calls (refused calls
    get [Ipc_intf.Errc.killed]), wait until every call already accepted
    has completed — the shards keep serving during the wait — then stop
    and join the supervisor and every shard domain (including
    respawns).  No accepted call is lost. *)

val channel_served : channel_server -> int
val channel_batches : channel_server -> int
(** Non-empty sweeps; [channel_served / channel_batches] is the mean
    batch size. *)

val channel_steals : channel_server -> int
(** Requests completed by a non-owner shard. *)

val channel_doorbell_stats : channel_server -> int * int * int
(** [(rings, wakes, parks)] summed over shards: lock-free rings, rings
    that had to wake a parked shard, and actual sleeps. *)

val channel_respawns : channel_server -> int
(** Shard domains the supervisor restarted. *)

val channel_fail_swept : channel_server -> int
(** In-flight requests of dead shards failed with [handler_fault]. *)

val shard_heartbeat : channel_server -> shard:int -> int
(** The shard's liveness word (bumped every loop iteration). *)

val client_slab_grows : client -> int
(** Slab growth on this client — zero once warmed up. *)

val client_timeouts : client -> int
(** Deadline calls on this client that timed out. *)

val client_rejected : client -> int
(** Calls on this client bounced with [Ipc_intf.Errc.retry]. *)

val client_slab_reclaimed : client -> int
(** Abandoned cells the server reclaimed for this client. *)

(** {1 Cross-domain: the legacy MPSC path (benchmark baseline)} *)

type server_domain

val spawn_server : t -> server_domain
(** A domain that serves cross-domain requests from an MPSC queue. *)

val cross_call : server_domain -> ep:int -> int array -> int
(** Enqueue on the server domain and spin/yield until completion.
    Allocates a request record, mutex and condvar per call. *)

val shutdown_server : server_domain -> unit
val served : server_domain -> int
