(* The fast-path memory substrate: a flat, offset-addressed array of
   64-bit words with atomic access, behind which the call-path layout
   (Ipc_intf.Wire_abi) is position-independent.

   Two backends:

   - [Heap]: an [int Atomic.t] per word, private to this process.  This
     is the existing in-heap discipline the zero-alloc channel path is
     built on, exposed through the same offset addressing so every
     protocol written against a segment can be unit-tested without
     touching the filesystem.

   - [Shm]: a Bigarray of int64 over an mmap'd file ([Unix.map_file]
     with [shared:true]), with atomicity supplied by C11 __atomic stubs
     on the data pointer.  Two OS processes mapping the same file see
     one coherent word array — the modern "CXL fabric" shape of the
     paper's shared-memory call path.

   Words hold OCaml immediates (63-bit); the Shm backend stores them
   sign-extended in 64 bits, little-endian (see Wire_abi's endianness
   canary).  All accessors are allocation-free on both backends. *)

type shm_map = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
type shm = { map : shm_map; path : string }
type t = Heap of int Atomic.t array | Shm of shm

external shm_load : shm_map -> int -> int = "ppc_seg_load" [@@noalloc]

external shm_store : shm_map -> int -> int -> unit = "ppc_seg_store"
  [@@noalloc]

external shm_cas : shm_map -> int -> int -> int -> bool = "ppc_seg_cas"
  [@@noalloc]

external shm_fetch_add : shm_map -> int -> int -> int = "ppc_seg_fetch_add"
  [@@noalloc]

external shm_msync : shm_map -> int = "ppc_seg_msync"
external shm_madvise : shm_map -> int -> int = "ppc_seg_madvise" [@@noalloc]
external pid_alive : int -> bool = "ppc_pid_alive" [@@noalloc]

let length = function
  | Heap a -> Array.length a
  | Shm s -> Bigarray.Array1.dim s.map

let check t i =
  if i < 0 || i >= length t then
    invalid_arg (Printf.sprintf "Segment: word %d out of bounds" i)

let get t i =
  match t with Heap a -> Atomic.get a.(i) | Shm s -> shm_load s.map i

let set t i v =
  match t with Heap a -> Atomic.set a.(i) v | Shm s -> shm_store s.map i v

let cas t i ~expected ~desired =
  match t with
  | Heap a -> Atomic.compare_and_set a.(i) expected desired
  | Shm s -> shm_cas s.map i expected desired

let fetch_add t i d =
  match t with
  | Heap a -> Atomic.fetch_and_add a.(i) d
  | Shm s -> shm_fetch_add s.map i d

(* Bounds-checked flavours for management paths; the call path uses the
   unchecked ones above (offsets are computed from a validated header,
   and a bad segment is rejected at attach, not per access). *)
let get_checked t i = check t i; get t i
let set_checked t i v = check t i; set t i v

(* --- construction ---------------------------------------------------------- *)

let create_heap ~words =
  if words <= 0 then invalid_arg "Segment.create_heap: words must be > 0";
  Heap (Array.init words (fun _ -> Atomic.make 0))

(* Map [words] 64-bit words of [path].  [create] truncates (fresh
   segment, creator zeroes and lays it out); without it the file must
   already exist (attacher).  The mapping is MAP_SHARED either way. *)
let map_file ~path ~words ~create () =
  if words <= 0 then invalid_arg "Segment.map_file: words must be > 0";
  let flags =
    if create then Unix.[ O_RDWR; O_CREAT; O_TRUNC ] else Unix.[ O_RDWR ]
  in
  let fd = Unix.openfile path flags 0o600 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      if create then Unix.ftruncate fd (words * 8);
      let g =
        Unix.map_file fd Bigarray.Int64 Bigarray.C_layout true [| words |]
      in
      Shm { map = Bigarray.array1_of_genarray g; path })

let path = function Heap _ -> None | Shm s -> Some s.path

let msync = function Heap _ -> 0 | Shm s -> shm_msync s.map

type advice = Madv_normal | Madv_willneed | Madv_dontneed

let madvise t advice =
  match t with
  | Heap _ -> 0
  | Shm s ->
      shm_madvise s.map
        (match advice with
        | Madv_normal -> 0
        | Madv_willneed -> 1
        | Madv_dontneed -> 2)

let unlink t =
  match t with
  | Heap _ -> ()
  | Shm s -> ( try Unix.unlink s.path with Unix.Unix_error _ -> ())
