(** Server wakeup protocol: a SPINNING/PARKED state machine in one
    atomic word.  Producers that find the bell SPINNING pay one atomic
    load — no lock; the backing mutex/condvar are touched only when the
    server is actually asleep.  The park path is lost-wakeup-free (see
    the implementation header for the interleaving argument). *)

type t

val create : unit -> t

val ring : t -> unit
(** Producer side.  Call only {e after} the work item is visible to the
    consumer. *)

val park : t -> nonempty:(unit -> bool) -> unit
(** Server side.  Publishes PARKED, rechecks [nonempty] under the mutex,
    and sleeps only if it returns [false].  Returns once rung. *)

val wake : t -> unit
(** Unconditional wake (shutdown). *)

val is_parked : t -> bool

val rings : t -> int
(** Rings that took the lock-free fast path. *)

val wakes : t -> int
(** Rings that had to lock and signal a parked server. *)

val parks : t -> int
(** Times the server actually slept. *)

val inject_delay : t -> int -> unit
(** Fault injector: make every subsequent {!ring} stall for [n]
    cpu-relax iterations before reading the bell state, widening the
    park/ring race window.  [0] (the default) disables it. *)
