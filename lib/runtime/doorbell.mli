(** Server wakeup protocol: a SPINNING/PARKED state machine in one
    atomic word.  Producers that find the bell SPINNING pay one atomic
    load — no lock; the backing mutex/condvar are touched only when the
    server is actually asleep.  The park path is lost-wakeup-free (see
    the implementation header for the interleaving argument). *)

type t

val create : unit -> t

val ring : t -> unit
(** Producer side.  Call only {e after} the work item is visible to the
    consumer. *)

val park : t -> nonempty:(unit -> bool) -> unit
(** Server side.  Publishes PARKED, rechecks [nonempty] under the mutex,
    and sleeps only if it returns [false].  Returns once rung. *)

val wake : t -> unit
(** Unconditional wake (shutdown). *)

val is_parked : t -> bool

val rings : t -> int
(** Rings that took the lock-free fast path. *)

val wakes : t -> int
(** Rings that had to lock and signal a parked server. *)

val parks : t -> int
(** Times the server actually slept. *)

val inject_delay : t -> int -> unit
(** Fault injector: make every subsequent {!ring} stall for [n]
    cpu-relax iterations before reading the bell state, widening the
    park/ring race window.  [0] (the default) disables it. *)

(** {1 Timed park}

    Building blocks for waits bounded in wall-clock time (the deadline
    path): the stdlib has no timed [Condition.wait], so a bounded wait
    is yield rounds followed by growing [nanosleep] naps.  All three
    primitives traffic in immediate ints — a wait that completes warm
    allocates nothing. *)

val now_ns : unit -> int
(** [CLOCK_MONOTONIC] in nanoseconds.  Allocation-free. *)

val yield : unit -> unit
(** [sched_yield(2)]: hand the core to another runnable thread (on a
    single-core host, the server domain that owes the reply). *)

val nap_ns : int -> unit
(** [nanosleep(2)] for at most the given nanoseconds, with the domain
    lock released so a sleeper never stalls a stop-the-world section. *)

val timed_wait : int Atomic.t -> until:int -> deadline_ns:int -> bool
(** Wait until [word] reads [until] or the absolute monotonic deadline
    ([now_ns] clock) passes: a few {!yield} rounds first, then naps
    growing to a 50 µs cap (which also bounds deadline overshoot).
    Returns [true] iff the value was observed in time.  Zero-alloc. *)
