(* A per-client cross-domain call channel: a preallocated submission
   ring plus the completion state machine carried by each request cell.

   This is the runtime embodiment of the paper's common-case discipline
   applied to the *remote* path: after warm-up a call touches only
   memory that belongs to this client (its slab, its SPSC ring) and one
   word of the server's doorbell — no locks, no allocation.  Compare the
   legacy path in {!Fastcall.cross_call}, which allocates a request
   record, a mutex and a condvar per call and takes the server's lock to
   wake it.

   One channel has exactly one producer domain (the client that
   [connect]ed) and, at any instant, one consumer (the owning server
   shard, or an idle sibling that stole the channel by winning
   [consumer_busy]).  The consumer try-lock costs the draining side one
   CAS per *batch*, not per request, so stealing never taxes the common
   case.

   Client-path helpers below are deliberately top-level functions: a
   local [let rec] would allocate a closure per call and break the
   zero-allocation property the Gc.minor_words test pins down. *)

type t = {
  slab : Request_slab.t;
  ring : Request_slab.cell Spsc_ring.Raw.t;
  doorbell : Doorbell.t;  (** the owning shard's bell *)
  shard : int;  (** owning shard index *)
  spin : int;  (** client wait budget before parking on the cell *)
  max_batch : int;
  consumer_busy : bool Atomic.t;  (** consumer/stealer try-lock *)
  wake_buf : Request_slab.cell array;
      (** deferred-signal buffer, guarded by [consumer_busy] *)
  dummy : Request_slab.cell;
  submitted : int Atomic.t;
  drained : int Atomic.t;
  timeouts : int Atomic.t;  (** deadline calls that abandoned their cell *)
  rejected : int Atomic.t;  (** calls bounced with [Errc.retry] *)
}

let create ?(slab_capacity = 16) ?slab_max ?(ring_capacity = 64) ?(spin = 2048)
    ?(max_batch = 32) ~doorbell ~shard ~arg_words () =
  if max_batch <= 0 then invalid_arg "Ppc_channel.create: max_batch must be > 0";
  let dummy = Request_slab.dummy_cell ~arg_words in
  {
    slab =
      Request_slab.create ~capacity:slab_capacity ?max_cells:slab_max
        ~arg_words ();
    ring = Spsc_ring.Raw.create ~capacity:ring_capacity ~dummy;
    doorbell;
    shard;
    spin;
    max_batch;
    consumer_busy = Atomic.make false;
    wake_buf = Array.make max_batch dummy;
    dummy;
    submitted = Atomic.make 0;
    drained = Atomic.make 0;
    timeouts = Atomic.make 0;
    rejected = Atomic.make 0;
  }

let shard t = t.shard
let submitted t = Atomic.get t.submitted
let drained t = Atomic.get t.drained
let timeouts t = Atomic.get t.timeouts
let rejected t = Atomic.get t.rejected
let slab_grows t = Request_slab.grows t.slab
let slab_created t = Request_slab.created t.slab
let slab_reclaimed t = Request_slab.reclaimed t.slab
let pending t = not (Spsc_ring.Raw.is_empty t.ring)

(* Spinning only ever pays when the peer can run concurrently; callers
   size the [spin] budget by the machine's parallelism (see
   {!Fastcall.connect}).  On a single-core host the budget collapses to
   a handful of iterations and the protocol leans on the parking path —
   a pure spin there just burns the timeslice the server needs
   ([Thread.yield] is a no-op across domains, and a zero nanosleep costs
   two orders of magnitude more than a futex wake). *)
let rec spin_done state budget n =
  if n >= budget then false
  else if Atomic.get state = Request_slab.state_done then true
  else begin
    Domain.cpu_relax ();
    spin_done state budget (n + 1)
  end

(* Copy the reply out and recycle the cell.  Shared tail of every call
   flavour that still owns its cell at completion. *)
let take_reply t cell args words =
  Array.blit cell.Request_slab.args 0 args 0 words;
  let rc = args.(words - 1) in
  Request_slab.release t.slab cell;
  rc

(* Backpressure bounces.  The RC slot is written as well as returned, so
   wrappers that read [args.(rc)] after the call see the same verdict. *)
let bounce_exhausted t args words =
  Atomic.incr t.rejected;
  args.(words - 1) <- Ipc_intf.Errc.retry;
  Ipc_intf.Errc.retry

(* The ring had no room for a cell we had already filled.  The server is
   behind, so make sure it is awake before handing [Errc.retry] to the
   caller's backoff loop — the server never saw the cell, so taking it
   back is race-free. *)
let bounce_ring_full t cell args words =
  Request_slab.release t.slab cell;
  Doorbell.ring t.doorbell;
  Atomic.incr t.rejected;
  args.(words - 1) <- Ipc_intf.Errc.retry;
  Ipc_intf.Errc.retry

(* Client side: the whole round trip.  Owner domain only.  Returns
   [Errc.retry] (without calling) when the submission ring is full or a
   bounded slab has every cell in flight. *)
let call t ~ep args =
  if Request_slab.exhausted t.slab then
    bounce_exhausted t args (Array.length args)
  else begin
    let cell = Request_slab.acquire t.slab in
    cell.Request_slab.ep <- ep;
    let words = Array.length cell.Request_slab.args in
    Array.blit args 0 cell.Request_slab.args 0 words;
    let state = cell.Request_slab.state in
    Atomic.set state Request_slab.state_pending;
    if not (Spsc_ring.Raw.try_push t.ring cell) then
      bounce_ring_full t cell args words
    else begin
      Doorbell.ring t.doorbell;
      Atomic.incr t.submitted;
      if not (spin_done state t.spin 0) then
        if
          Atomic.compare_and_set state Request_slab.state_pending
            Request_slab.state_parked
        then begin
          (* The server signals under [cell.cm] after flipping the
             state, so checking the state before each wait closes the
             wakeup race. *)
          Mutex.lock cell.Request_slab.cm;
          while Atomic.get state <> Request_slab.state_done do
            Condition.wait cell.Request_slab.cc cell.Request_slab.cm
          done;
          Mutex.unlock cell.Request_slab.cm
        end;
      take_reply t cell args words
    end
  end

(* Deadline flavour: same submission path, but the wait is bounded in
   wall-clock *time* — [deadline] is in nanoseconds.  The wait is the
   channel's [spin] budget first (a warm reply is taken without ever
   reading the clock), then {!Doorbell.timed_wait}: sched_yield rounds
   followed by growing nanosleep naps until the reply lands or the
   absolute monotonic deadline passes.  The whole wait allocates
   nothing.  On expiry the client *abandons* the cell with a CAS
   ownership handoff.  Winning the CAS means the server has not
   replied: it will see [state_abandoned], discard any reply, and
   {!Request_slab.reclaim} the cell — so we must never touch it again.
   Losing the CAS means the reply beat the deadline by a whisker;
   completion wins and the call succeeds normally.  (A deadline shorter
   than the spin budget still pays the whole spin — the budget is a few
   dozen cpu-relax iterations, well under a microsecond.) *)
let call_deadline t ~ep ~deadline args =
  if Request_slab.exhausted t.slab then
    bounce_exhausted t args (Array.length args)
  else begin
    let cell = Request_slab.acquire t.slab in
    cell.Request_slab.ep <- ep;
    let words = Array.length cell.Request_slab.args in
    Array.blit args 0 cell.Request_slab.args 0 words;
    let state = cell.Request_slab.state in
    Atomic.set state Request_slab.state_pending;
    if not (Spsc_ring.Raw.try_push t.ring cell) then
      bounce_ring_full t cell args words
    else begin
      Doorbell.ring t.doorbell;
      Atomic.incr t.submitted;
      if
        spin_done state t.spin 0
        ||
        let start = Doorbell.now_ns () in
        let deadline_ns =
          if deadline > max_int - start then max_int else start + deadline
        in
        Doorbell.timed_wait state ~until:Request_slab.state_done ~deadline_ns
      then take_reply t cell args words
      else if
        Atomic.compare_and_set state Request_slab.state_pending
          Request_slab.state_abandoned
      then begin
        Atomic.incr t.timeouts;
        args.(words - 1) <- Ipc_intf.Errc.timed_out;
        Ipc_intf.Errc.timed_out
      end
      else
        (* CAS lost: only the server writes this word once we are
           pending, so the state is [done] — take the reply. *)
        take_reply t cell args words
    end
  end

(* Consumer side. ------------------------------------------------------- *)

let rec drain_loop t run count parked =
  if count >= t.max_batch then finish t count parked
  else begin
    let cell = Spsc_ring.Raw.try_pop t.ring in
    if cell.Request_slab.index < 0 then finish t count parked
    else if
      Atomic.get cell.Request_slab.state = Request_slab.state_abandoned
    then begin
      (* The client's deadline expired before we got here: it has
         forsaken the cell, so skip the handler entirely and hand the
         cell back through the slab's reclaim stack. *)
      Request_slab.reclaim t.slab cell;
      drain_loop t run (count + 1) parked
    end
    else begin
      run cell.Request_slab.ep cell.Request_slab.args;
      let prev =
        Atomic.exchange cell.Request_slab.state Request_slab.state_done
      in
      if prev = Request_slab.state_parked then begin
        t.wake_buf.(parked) <- cell;
        drain_loop t run (count + 1) (parked + 1)
      end
      else if prev = Request_slab.state_abandoned then begin
        (* The client gave up while the handler was running.  Nobody
           will read the reply; discard it and recycle the cell —
           exactly once, since the abandon CAS made us its sole owner. *)
        Request_slab.reclaim t.slab cell;
        drain_loop t run (count + 1) parked
      end
      else drain_loop t run (count + 1) parked
    end
  end

(* One pass of signals after the whole batch — notification amortised
   over the batch, and only for clients that actually went to sleep.  A
   signalled cell may already have been recycled by its (state-checking)
   client; the spurious signal is harmless. *)
and finish t count parked =
  for i = 0 to parked - 1 do
    let cell = t.wake_buf.(i) in
    Mutex.lock cell.Request_slab.cm;
    Condition.signal cell.Request_slab.cc;
    Mutex.unlock cell.Request_slab.cm;
    t.wake_buf.(i) <- t.dummy
  done;
  count

(* Drain up to [max_batch] requests, running [run ep args] for each.
   Returns the number drained; 0 if another consumer holds the channel
   or there is no work.  Any domain may call this — the try-lock
   serialises consumers, which is what makes steal-on-idle safe on an
   SPSC ring. *)
let try_drain t ~run =
  if Atomic.get t.consumer_busy then 0
  else if not (Atomic.compare_and_set t.consumer_busy false true) then 0
  else begin
    let n = drain_loop t run 0 0 in
    Atomic.set t.consumer_busy false;
    if n > 0 then ignore (Atomic.fetch_and_add t.drained n);
    n
  end
