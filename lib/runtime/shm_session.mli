(** A reconnecting client over a {!Shm_channel} segment file: the
    client half of cross-process session recovery.

    {!Shm_channel} fails closed once its peer dies
    ([Ipc_intf.Errc.peer_dead]) or the segment is regenerated
    underneath it ([Errc.stale_generation]); this module owns the
    recovery policy above that line.  Bindings carry the entry point's
    {e name and behavior spec}, so after a server restart the session
    reattaches through the header-first remap path (refusing the
    generation it fled), re-resolves every binding through the ctl
    plane (lookup, or register + publish against a fresh registry),
    and retries the interrupted call — backing off under
    {!Runtime.Backoff} on transient backpressure.  Both recovery
    budgets are bounded and exhaustion answers [Errc.retry]: callers
    never hang, and never see a transport-level death code.

    Delivery for a call interrupted by a server death is
    at-least-once: the dead server may have executed it before the
    sweep failed it.  Route only idempotent behaviors through a
    session, or dedup above it. *)

type t

type binding
(** A named entry point this session keeps resolved across server
    incarnations. *)

val connect :
  ?spin:int ->
  ?probe_window_ns:int ->
  ?attach_timeout_ns:int ->
  ?reattach_limit:int ->
  ?retry_limit:int ->
  ?on_reattach:(unit -> unit) ->
  path:string ->
  unit ->
  t
(** Attach to the segment file at [path] as its client, waiting
    (bounded by [attach_timeout_ns], default 5 s) for a laid-out
    segment with a ready server — and for the previous client's
    session to be released, when the slot is still held.
    [reattach_limit] (default 8) bounds channel rebuilds per call;
    [retry_limit] (default 64) bounds backoff rounds per call;
    [on_reattach] fires once per {e successful} reattach — exactly
    once per regeneration this session healed, so the chaos harness
    can mirror it into its ledger and reconcile it against injected
    deaths.  [spin] and
    [probe_window_ns] pass through to {!Shm_channel.attach}.
    @raise Shm_channel.Bad_segment if nothing serviceable appears in
    time. *)

val bind : t -> name:string -> spec:Ipc_intf.Sigs.spec -> binding
(** Declare (idempotently, by name) an entry point the session keeps
    resolved: looked up by [name] when the server already serves it,
    registered from [spec] and published under [name] when it does
    not.  Resolution failures here are retried by the next {!call}.
    @raise Invalid_argument if [name] cannot ride the wire. *)

val call : ?deadline:int -> t -> binding -> int array -> int
(** One call under the full recovery policy: returns the RC slot, with
    server death / regeneration healed by reattach + re-resolve +
    retry, and backpressure backed off — or [Errc.retry] when a
    bounded budget runs out.  [deadline] (absolute CLOCK_MONOTONIC ns)
    surfaces [Errc.timed_out] exactly like {!Shm_channel.await}.
    Genuine handler faults (server alive) surface as
    [Errc.handler_fault]. *)

val close : t -> unit
(** Announce clean shutdown to the server (its session loop exits) and
    forget the channel. *)

val reattaches : t -> int
(** Successful or attempted channel rebuilds over this session's
    lifetime. *)

val retried : t -> int
(** Calls that went through at least one death-triggered retry. *)

val generation : t -> int
(** The segment generation of the current attachment. *)

val channel : t -> Shm_channel.t option
(** The live transport, for observability; [None] between a recovery
    code and the reattach that heals it. *)
