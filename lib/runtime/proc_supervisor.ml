(* A process supervisor for the shm server: PR 5's shard supervisor
   (detect a dead worker, respawn it) extended across the process
   boundary.  The supervised unit is a forked child running the
   caller's server function over a segment file; on its death the
   supervisor reaps it, regenerates the segment in place (next
   generation under the seqlock — surviving clients fail closed and
   reattach) and forks a replacement.

   Polling, not a watcher domain, on purpose: forking a multi-domain
   OCaml 5 process leaves the child's GC waiting on a stop-the-world
   rendezvous with domains that do not exist in the child.  Keeping
   the supervisor (and everything it forks from) single-domain is the
   fork-safety discipline the bench's shm section already follows;
   the caller drives [check] from its event loop instead.  [check]
   also doubles as the reaper — a SIGKILLed child stays a zombie until
   it runs, and zombies answer kill(pid, 0), so prompt checking is
   what lets the client's liveness probe see the death at all. *)

type t = {
  path : string;
  server_main : unit -> int;
  mutable pid : int;  (* 0 = no live child *)
  mutable respawns : int;
  mutable armed : bool;
}

type status = Running | Respawned | Exited of Unix.process_status

let fork_child t =
  match Unix.fork () with
  | 0 ->
      let code = try t.server_main () with _ -> 120 in
      (* _exit, not exit: the child shares the parent's at_exit stack
         and buffered channels, and must not run them. *)
      Unix._exit code
  | pid -> t.pid <- pid

let start ~path ?(capacity = 64) ?(arg_words = 8) ~server () =
  ignore (Shm_channel.create_file ~path ~capacity ~arg_words () : Segment.t);
  let t = { path; server_main = server; pid = 0; respawns = 0; armed = true } in
  fork_child t;
  t

(* Map the file fresh (header first for the true extent) and rebuild it
   in place.  A new mapping, not a cached one: the supervisor may
   outlive many segment incarnations and holds no channel of its own. *)
let regenerate_segment t =
  let hdr =
    Segment.map_file ~path:t.path ~words:Ipc_intf.Wire_abi.header_words
      ~create:false ()
  in
  let words = Segment.get hdr Ipc_intf.Wire_abi.off_total_words in
  let seg = Segment.map_file ~path:t.path ~words ~create:false () in
  Shm_channel.regenerate seg

let check t =
  if t.pid = 0 then Exited (Unix.WEXITED 0)
  else
    match Unix.waitpid [ Unix.WNOHANG ] t.pid with
    | 0, _ -> Running
    | _, st ->
        if t.armed then begin
          regenerate_segment t;
          t.respawns <- t.respawns + 1;
          fork_child t;
          Respawned
        end
        else begin
          t.pid <- 0;
          Exited st
        end
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        t.pid <- 0;
        Exited (Unix.WEXITED 0)

let kill9 t = if t.pid > 0 then (try Unix.kill t.pid Sys.sigkill with _ -> ())
let disarm t = t.armed <- false
let pid t = t.pid
let respawns t = t.respawns

(* Wait (bounded) for the current child to exit without respawning it —
   the clean-shutdown path after the last client announced shutdown.
   Disarms.  [None] on timeout, with the child still running. *)
let wait_exit ?(timeout_ns = 10_000_000_000) t =
  disarm t;
  let deadline = Doorbell.now_ns () + timeout_ns in
  let rec go () =
    match check t with
    | Exited st -> Some st
    | Respawned -> assert false (* disarmed *)
    | Running ->
        if Doorbell.now_ns () > deadline then None
        else begin
          Doorbell.nap_ns 1_000_000;
          go ()
        end
  in
  go ()
