(* The server wakeup protocol: a two-state (SPINNING / PARKED) machine
   in one atomic word, backed by a mutex/condvar that is only touched
   when the server is actually asleep.

   The paper's hand-off discipline keeps the common case free of shared
   synchronisation; this is the same idea applied to notification.  A
   producer that finds the bell in SPINNING state pays one atomic load —
   no lock, no syscall.  The mutex and condvar exist solely for the
   PARKED case, and the park path is lost-wakeup-free because both the
   final "is there work?" recheck and the condvar wait happen under the
   mutex, while ringers flip the state back to SPINNING under that same
   mutex before signalling:

     server:  state := PARKED;  lock;  recheck work;  wait;  unlock
     ringer:  publish work;  if state = PARKED then
                lock;  state := SPINNING;  signal;  unlock

   If the ringer publishes work before the server's recheck, the server
   sees it and never sleeps.  If the ringer publishes after, it must
   have read state = PARKED (the server stored it first), so it takes
   the slow path; the mutex then serialises it against the wait. *)

let spinning = 0
let parked = 1

type t = {
  state : int Atomic.t;
  mutex : Mutex.t;
  cond : Condition.t;
  rings : int Atomic.t;  (** ring calls that found the bell SPINNING *)
  wakes : int Atomic.t;  (** ring calls that had to lock and signal *)
  parks : int Atomic.t;  (** times the server actually went to sleep *)
  delay : int Atomic.t;
      (** fault injector: cpu_relax iterations inserted between a ring's
          publish and its state read, widening the park/ring race window *)
}

let create () =
  {
    state = Atomic.make spinning;
    mutex = Mutex.create ();
    cond = Condition.create ();
    rings = Atomic.make 0;
    wakes = Atomic.make 0;
    parks = Atomic.make 0;
    delay = Atomic.make 0;
  }

let inject_delay t n = Atomic.set t.delay (max 0 n)

let rec stall n = if n > 0 then (Domain.cpu_relax (); stall (n - 1))

(* Producer side.  Call only after the work item is visible (e.g. after
   the ring-buffer push).  Warm path: two atomic loads + one atomic
   increment, no lock. *)
let ring t =
  (let d = Atomic.get t.delay in
   if d > 0 then stall d);
  if Atomic.get t.state = parked then begin
    Mutex.lock t.mutex;
    Atomic.set t.state spinning;
    Condition.signal t.cond;
    Mutex.unlock t.mutex;
    Atomic.incr t.wakes
  end
  else Atomic.incr t.rings

(* Server side.  [nonempty] is the "is there work?" recheck; it runs
   under the mutex.  Returns once rung (or immediately, if work arrived
   during the publish window). *)
let park t ~nonempty =
  Atomic.set t.state parked;
  Mutex.lock t.mutex;
  if nonempty () then Atomic.set t.state spinning
  else begin
    Atomic.incr t.parks;
    while Atomic.get t.state = parked do
      Condition.wait t.cond t.mutex
    done
  end;
  Mutex.unlock t.mutex

(* Unconditional wake, for shutdown. *)
let wake t =
  Mutex.lock t.mutex;
  Atomic.set t.state spinning;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let is_parked t = Atomic.get t.state = parked
let rings t = Atomic.get t.rings
let wakes t = Atomic.get t.wakes
let parks t = Atomic.get t.parks

(* --- timed park ---------------------------------------------------------

   The deadline path needs a wait that is bounded in *time*, and the
   stdlib offers neither a timed [Condition.wait] nor a boxing-free
   monotonic clock — so the timed park is built from three C stubs (see
   runtime_stubs.c) and never touches the condvar machinery above:

     spin (caller's budget) -> sched_yield rounds -> growing nanosleeps

   The yield rounds are the single-core workhorse: they hand the core
   straight to the server domain that owes us the reply.  The naps cap
   at [nap_cap_ns], which bounds how far past its deadline a sleeping
   waiter can oversleep.  Everything here is an immediate int — a wait
   that completes warm allocates nothing. *)

external now_ns : unit -> int = "ppc_runtime_now_ns" [@@noalloc]
external yield : unit -> unit = "ppc_runtime_yield" [@@noalloc]
external nap_ns : int -> unit = "ppc_runtime_nap_ns"

let yield_rounds = 64
let nap_floor_ns = 1_000
let nap_cap_ns = 50_000

let rec timed_wait_loop word ~until ~deadline_ns n =
  if Atomic.get word = until then true
  else
    let now = now_ns () in
    if now >= deadline_ns then false
    else begin
      (if n < yield_rounds then yield ()
       else begin
         let cap =
           if n < 2 * yield_rounds then nap_floor_ns else nap_cap_ns
         in
         let remaining = deadline_ns - now in
         nap_ns (if remaining < cap then remaining else cap)
       end);
      timed_wait_loop word ~until ~deadline_ns (n + 1)
    end

let timed_wait word ~until ~deadline_ns =
  timed_wait_loop word ~until ~deadline_ns 0
