(* A reconnecting client endpoint over a Shm_channel segment file.

   Shm_channel deliberately stops at the transport: once a peer-death
   verdict lands or the segment is regenerated underneath the mapping,
   every operation fails closed ([Errc.peer_dead] /
   [Errc.stale_generation]) and the channel value is defunct.  This
   module owns the policy above that line — the client half of session
   recovery:

     - bindings carry the *name and behavior spec* of each entry point,
       not just the wire handle, so after a server restart the session
       can re-resolve (lookup, or register + publish when the fresh
       registry has never heard the name) through the ctl plane;
     - a call that hits a recovery code forgets the channel, reattaches
       via the header-first remap path — waiting out the rebuild with
       [after_generation], so it cannot re-latch onto the generation it
       fled — re-resolves every binding, and retries the interrupted
       call;
     - transient backpressure ([Errc.retry]) backs off under
       [Runtime.Backoff]; both budgets are bounded, and an exhausted
       budget answers [Errc.retry] rather than hanging — the caller
       always learns the truth and owns the next move.

   A retried call may have executed on the server before it died:
   delivery across a restart is at-least-once for the interrupted call
   (exactly-once would need server-side dedup state that dies with the
   server).  Handlers crossing this path should be idempotent, like
   every conformance behavior is. *)

module W = Ipc_intf.Wire_abi
module Errc = Ipc_intf.Errc
module Ch = Shm_channel

type binding = {
  name : string;
  spec : Ipc_intf.Sigs.spec;
  mutable ep : int;
  mutable valid : bool;
      (* [ep] resolves against the *current* server incarnation; a
         reattach invalidates every binding until re-resolution *)
}

type t = {
  path : string;
  spin : int option;
  probe_window_ns : int option;
  attach_timeout_ns : int;
  reattach_limit : int;
  retry_limit : int;
  on_reattach : unit -> unit;
  bo : Backoff.t;
  mutable ch : Ch.t option;
  mutable last_gen : int;
  mutable bindings : binding list;
  mutable reattaches : int;
  mutable retried : int;
  mutable scratch : int array;  (* ctl-plane staging *)
}

(* Resolve one binding against the live server: lookup by name; a
   registry that has never heard it (fresh incarnation) gets the spec
   registered and published under that name.  Single client per
   segment, so lookup-miss -> register cannot race another resolver. *)
let resolve t ch b =
  let a = t.scratch in
  let w0, w1 =
    match W.pack_name b.name with
    | Some p -> p
    | None -> invalid_arg ("Shm_session: unpackable name " ^ b.name)
  in
  Array.fill a 0 (Array.length a) 0;
  a.(0) <- W.ctl_lookup;
  a.(1) <- w0;
  a.(2) <- w1;
  let rc = Ch.call ch ~ep:W.ctl_ep a in
  if rc = Errc.ok then begin
    b.ep <- W.pack_raw_call a.(0);
    b.valid <- true;
    rc
  end
  else if rc = Errc.no_entry then begin
    let code, param = W.spec_to_wire b.spec in
    Array.fill a 0 (Array.length a) 0;
    a.(0) <- W.ctl_register;
    a.(1) <- code;
    a.(2) <- param;
    let rc = Ch.call ch ~ep:W.ctl_ep a in
    if rc <> Errc.ok then rc
    else begin
      let handle = a.(0) in
      Array.fill a 0 (Array.length a) 0;
      a.(0) <- W.ctl_publish;
      a.(1) <- handle;
      a.(2) <- w0;
      a.(3) <- w1;
      let rc = Ch.call ch ~ep:W.ctl_ep a in
      if rc = Errc.ok then begin
        b.ep <- handle;
        b.valid <- true
      end;
      rc
    end
  end
  else rc

(* Attach (or reattach) the underlying channel: wait out any rebuild in
   progress, refuse the generation we fled, wait for a ready server,
   then re-resolve every binding.  An occupied client slot (the server
   has not yet released our predecessor's session) reads as
   Bad_segment from [attach]; keep napping until the release, bounded
   by the attach deadline. *)
let attach_now t =
  let deadline = Doorbell.now_ns () + t.attach_timeout_ns in
  let remaining () = max 1_000_000 (deadline - Doorbell.now_ns ()) in
  let rec go () =
    match
      Ch.attach_file ?spin:t.spin ?probe_window_ns:t.probe_window_ns
        ~timeout_ns:(remaining ()) ~after_generation:t.last_gen
        ~role:Ch.Client t.path
    with
    | ch ->
        if not (Ch.wait_peer_ready ~timeout_ns:(remaining ()) ch) then
          raise (Ch.Bad_segment (t.path ^ ": no server became ready in time"));
        let aw = Ch.arg_words ch in
        if Array.length t.scratch <> aw then t.scratch <- Array.make aw 0;
        t.ch <- Some ch;
        t.last_gen <- Ch.generation ch;
        List.iter
          (fun b ->
            b.valid <- false;
            (* Best effort here: a failure (server died again already)
               leaves the binding invalid and the call path re-resolves
               under its own recovery budget. *)
            ignore (resolve t ch b : int))
          t.bindings
    | exception Ch.Bad_segment _ when Doorbell.now_ns () < deadline ->
        Doorbell.nap_ns 1_000_000;
        go ()
  in
  go ()

let connect ?spin ?probe_window_ns ?(attach_timeout_ns = 5_000_000_000)
    ?(reattach_limit = 8) ?(retry_limit = 64) ?(on_reattach = fun () -> ())
    ~path () =
  let t =
    {
      path;
      spin;
      probe_window_ns;
      attach_timeout_ns;
      reattach_limit;
      retry_limit;
      on_reattach;
      bo = Backoff.create ();
      ch = None;
      last_gen = 0;
      bindings = [];
      reattaches = 0;
      retried = 0;
      scratch = [||];
    }
  in
  attach_now t;
  t

let bind t ~name ~spec =
  match List.find_opt (fun b -> b.name = name) t.bindings with
  | Some b -> b
  | None ->
      (match W.pack_name name with
      | Some _ -> ()
      | None -> invalid_arg ("Shm_session.bind: unpackable name " ^ name));
      let b = { name; spec; ep = W.ctl_ep; valid = false } in
      t.bindings <- b :: t.bindings;
      (match t.ch with
      | Some ch -> ignore (resolve t ch b : int)
      | None -> ());
      b

(* One call under the full recovery policy.  [retries] bounds backoff
   rounds on [Errc.retry]; [reattaches] bounds channel rebuilds;
   [rere] is the once-per-call re-resolution allowance for a handle
   the server killed or exchanged without dying. *)
let rec run t b args deadline retries reattaches rere =
  match t.ch with
  | None ->
      if reattaches <= 0 then Errc.retry
      else begin
        t.reattaches <- t.reattaches + 1;
        match attach_now t with
        | () ->
            (* Fires on success only: one firing per healed regeneration,
               so a ledger mirroring it reconciles exactly against
               injected deaths even when an attempt times out first. *)
            t.on_reattach ();
            run t b args deadline retries (reattaches - 1) rere
        | exception Ch.Bad_segment _ -> Errc.retry
        | exception Unix.Unix_error _ -> Errc.retry
      end
  | Some ch ->
      let rc =
        if not b.valid then begin
          let rc = resolve t ch b in
          if rc = Errc.ok then
            if deadline = max_int then Ch.call ch ~ep:b.ep args
            else Ch.call_deadline ch ~ep:b.ep ~deadline args
          else rc
        end
        else if deadline = max_int then Ch.call ch ~ep:b.ep args
        else Ch.call_deadline ch ~ep:b.ep ~deadline args
      in
      if
        rc = Errc.peer_dead || rc = Errc.stale_generation
        || ((rc = Errc.handler_fault || rc = Errc.killed) && Ch.peer_dead ch)
      then begin
        (* The server is gone (a handler_fault with the verdict set is
           the sweep's answer for an in-flight call, not a real fault):
           forget the channel and retry through a fresh attach. *)
        t.ch <- None;
        t.retried <- t.retried + 1;
        run t b args deadline retries reattaches rere
      end
      else if rc = Errc.retry && retries > 0 then begin
        Backoff.once t.bo;
        run t b args deadline (retries - 1) reattaches rere
      end
      else if rc = Errc.no_entry && rere then begin
        b.valid <- false;
        run t b args deadline retries reattaches false
      end
      else rc

let call ?(deadline = max_int) t b args =
  Backoff.reset t.bo;
  run t b args deadline t.retry_limit t.reattach_limit true

let close t =
  (match t.ch with Some ch -> Ch.announce_shutdown ch | None -> ());
  t.ch <- None

let reattaches t = t.reattaches
let retried t = t.retried
let generation t = t.last_gen
let channel t = t.ch
