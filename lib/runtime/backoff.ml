(* Caller-side discipline for [Errc.retry]: bounded exponential backoff.

   The channel path answers transient backpressure (submission ring
   full, bounded slab exhausted) with an explicit return code instead of
   spinning inside the call — the *caller* owns the retry policy, the
   way the paper pushes policy out of the PPC mechanism.  This module is
   that policy's default shape: double the pause between attempts from
   [min_spin] up to [max_spin] cpu-relax iterations, give up after
   [attempts] tries, and let any non-[retry] code through untouched.

   Pure spinning, no clock, no allocation: deterministic under the test
   harness and warm-path-safe for callers that retry inside a
   latency-sensitive loop. *)

type t = {
  min_spin : int;
  max_spin : int;
  mutable cur : int;  (** next pause length *)
  mutable spun : int;  (** total iterations paused since reset *)
}

let create ?(min_spin = 32) ?(max_spin = 8192) () =
  if min_spin <= 0 then invalid_arg "Backoff.create: min_spin must be > 0";
  if max_spin < min_spin then
    invalid_arg "Backoff.create: max_spin must be >= min_spin";
  { min_spin; max_spin; cur = min_spin; spun = 0 }

let reset t =
  t.cur <- t.min_spin;
  t.spun <- 0

let rec stall n = if n > 0 then (Domain.cpu_relax (); stall (n - 1))

(* One pause at the current length, then double (saturating). *)
let once t =
  stall t.cur;
  t.spun <- t.spun + t.cur;
  t.cur <- min t.max_spin (2 * t.cur)

let spun t = t.spun

(* Run [f] until it answers something other than [Errc.retry], backing
   off between attempts; at most [attempts] runs.  Returns the last
   return code — still [Errc.retry] if the budget ran out, so the caller
   always learns the truth. *)
let with_retry ?(attempts = 10) ?min_spin ?max_spin f =
  if attempts <= 0 then invalid_arg "Backoff.with_retry: attempts must be > 0";
  let b = create ?min_spin ?max_spin () in
  let rec go left =
    let rc = f () in
    if rc <> Ipc_intf.Errc.retry || left <= 1 then rc
    else begin
      once b;
      go (left - 1)
    end
  in
  go attempts
