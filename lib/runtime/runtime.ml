(* Library interface: the PPC design principles on real OCaml 5
   multicore — lock-free per-domain pools, MPSC cross-domain channels,
   and the mutex-pool baseline they are measured against. *)

module Mpsc_queue = Mpsc_queue
module Spsc_ring = Spsc_ring
module Request_slab = Request_slab
module Doorbell = Doorbell
module Backoff = Backoff
module Ppc_channel = Ppc_channel
module Fastcall = Fastcall
module Segment = Segment
module Shm_channel = Shm_channel
module Shm_session = Shm_session
module Proc_supervisor = Proc_supervisor
module Control = Control
module Locked_registry = Locked_registry
module Domain_pool = Domain_pool
module Striped_counter = Striped_counter
module Treiber_stack = Treiber_stack
