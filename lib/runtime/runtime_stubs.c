/* Timed-wait primitives for the runtime's deadline path.
 *
 * The OCaml stdlib offers no timed condition wait and no boxing-free
 * monotonic clock, so the deadline protocol gets three tiny stubs:
 *
 *   - now_ns: CLOCK_MONOTONIC in integer nanoseconds.  [@@noalloc] —
 *     the result is an immediate (63-bit nanoseconds since boot fit
 *     with centuries to spare), so a warm deadline call reads the
 *     clock without touching the minor heap.
 *   - yield: sched_yield(2).  Hands the core to another runnable
 *     thread — on a single-core host this is what lets the server
 *     domain produce the reply the caller is waiting for.  Does not
 *     release the domain lock: other domains do not share it, and the
 *     call returns in microseconds.
 *   - nap_ns: nanosleep(2) inside enter/leave_blocking_section, so a
 *     sleeping client never stalls a stop-the-world section.  Not
 *     [@@noalloc]: leaving the blocking section may run pending
 *     actions.
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <caml/threads.h>
#include <errno.h>
#include <sched.h>
#include <signal.h>
#include <stdint.h>
#include <sys/mman.h>
#include <time.h>

CAMLprim value ppc_runtime_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}

CAMLprim value ppc_runtime_yield(value unit)
{
  (void)unit;
  sched_yield();
  return Val_unit;
}

CAMLprim value ppc_runtime_nap_ns(value ns)
{
  struct timespec ts;
  intnat v = Long_val(ns);
  if (v < 0) v = 0;
  ts.tv_sec = v / 1000000000;
  ts.tv_nsec = v % 1000000000;
  caml_enter_blocking_section();
  nanosleep(&ts, NULL);
  caml_leave_blocking_section();
  return Val_unit;
}

/* --- shared-segment words (Wire_abi) ------------------------------------
 *
 * The segment is a Bigarray of int64 words, either malloc'd in-heap or
 * an mmap'd file shared between processes.  OCaml's Atomic module only
 * covers heap refs, so the cross-process flavours live here: C11
 * __atomic builtins on the bigarray's data pointer.  Stored values are
 * OCaml immediates (63-bit), so every result fits Val_long and every
 * stub is [@@noalloc].
 *
 * Memory orders mirror what the in-heap path gets from Atomic.t:
 * acquire loads, release stores, seq_cst RMW — strong enough for the
 * publish-then-bump-tail ring discipline on both x86 and ARM.
 */

static inline int64_t *seg_word(value ba, value idx)
{
  return (int64_t *)Caml_ba_data_val(ba) + Long_val(idx);
}

CAMLprim value ppc_seg_load(value ba, value idx)
{
  return Val_long((intnat)__atomic_load_n(seg_word(ba, idx), __ATOMIC_ACQUIRE));
}

CAMLprim value ppc_seg_store(value ba, value idx, value v)
{
  __atomic_store_n(seg_word(ba, idx), (int64_t)Long_val(v), __ATOMIC_RELEASE);
  return Val_unit;
}

CAMLprim value ppc_seg_cas(value ba, value idx, value expected, value desired)
{
  int64_t exp = (int64_t)Long_val(expected);
  return Val_bool(__atomic_compare_exchange_n(
      seg_word(ba, idx), &exp, (int64_t)Long_val(desired), 0,
      __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST));
}

CAMLprim value ppc_seg_fetch_add(value ba, value idx, value delta)
{
  return Val_long((intnat)__atomic_fetch_add(
      seg_word(ba, idx), (int64_t)Long_val(delta), __ATOMIC_SEQ_CST));
}

/* Flush the whole mapping to its backing file.  Returns 0 / -errno;
 * harmless (EINVAL) on an in-heap bigarray, which is not page-aligned.
 * Synchronous, so not [@@noalloc]-hot — callers use it at shutdown. */
CAMLprim value ppc_seg_msync(value ba)
{
  void *p = Caml_ba_data_val(ba);
  intnat bytes = Caml_ba_array_val(ba)->dim[0] * 8;
  int r;
  caml_enter_blocking_section();
  r = msync(p, (size_t)bytes, MS_SYNC);
  caml_leave_blocking_section();
  return Val_long(r == 0 ? 0 : -errno);
}

/* madvise with a tiny advice enum: 0 normal, 1 willneed, 2 dontneed.
 * Returns 0 / -errno. */
CAMLprim value ppc_seg_madvise(value ba, value advice)
{
  void *p = Caml_ba_data_val(ba);
  intnat bytes = Caml_ba_array_val(ba)->dim[0] * 8;
  int adv = MADV_NORMAL;
  switch (Long_val(advice)) {
  case 1: adv = MADV_WILLNEED; break;
  case 2: adv = MADV_DONTNEED; break;
  default: break;
  }
  return Val_long(madvise(p, (size_t)bytes, adv) == 0 ? 0 : -errno);
}

/* Peer-liveness probe: kill(pid, 0).  True while the process exists —
 * including as a zombie, so a prober that forked its peer must reap it
 * (waitpid) before the probe can go negative.  The heartbeat-frozen
 * precondition keeps this syscall off the warm path. */
CAMLprim value ppc_pid_alive(value pid)
{
  int r = kill((pid_t)Long_val(pid), 0);
  return Val_bool(r == 0 || errno == EPERM);
}
