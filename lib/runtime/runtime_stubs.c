/* Timed-wait primitives for the runtime's deadline path.
 *
 * The OCaml stdlib offers no timed condition wait and no boxing-free
 * monotonic clock, so the deadline protocol gets three tiny stubs:
 *
 *   - now_ns: CLOCK_MONOTONIC in integer nanoseconds.  [@@noalloc] —
 *     the result is an immediate (63-bit nanoseconds since boot fit
 *     with centuries to spare), so a warm deadline call reads the
 *     clock without touching the minor heap.
 *   - yield: sched_yield(2).  Hands the core to another runnable
 *     thread — on a single-core host this is what lets the server
 *     domain produce the reply the caller is waiting for.  Does not
 *     release the domain lock: other domains do not share it, and the
 *     call returns in microseconds.
 *   - nap_ns: nanosleep(2) inside enter/leave_blocking_section, so a
 *     sleeping client never stalls a stop-the-world section.  Not
 *     [@@noalloc]: leaving the blocking section may run pending
 *     actions.
 */

#include <caml/mlvalues.h>
#include <caml/threads.h>
#include <sched.h>
#include <time.h>

CAMLprim value ppc_runtime_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}

CAMLprim value ppc_runtime_yield(value unit)
{
  (void)unit;
  sched_yield();
  return Val_unit;
}

CAMLprim value ppc_runtime_nap_ns(value ns)
{
  struct timespec ts;
  intnat v = Long_val(ns);
  if (v < 0) v = 0;
  ts.tv_sec = v / 1000000000;
  ts.tv_nsec = v % 1000000000;
  caml_enter_blocking_section();
  nanosleep(&ts, NULL);
  caml_leave_blocking_section();
  return Val_unit;
}
