(* The PPC design pattern on real OCaml 5 domains.

   What the paper's facility does with per-processor worker/CD pools,
   this module does with per-domain state:

   - the service table is a fixed array of handlers, written only during
     registration and read without any synchronisation on the call path
     (the per-CPU service table);
   - every domain keeps a private LIFO stack of preallocated *frames*
     (argument block + scratch buffer) in domain-local storage: the call
     path allocates nothing and takes no locks (the CD/stack pool, with
     the same serial-reuse-for-warmth property);
   - the 8-word argument convention is kept: handlers mutate an 8-slot
     int array in place.

   "Allocates nothing" is literal: the context record is pooled with its
   frame, cleanup is a trap frame rather than a [Fun.protect] closure,
   and the pool is a growable array rather than a cons list, so a warm
   call writes zero minor-heap words (pinned by a test).

   Cross-domain calls come in two flavours:
   - the *channel path* ({!spawn_channel_server} / {!connect} /
     {!channel_call}): preallocated request slabs, per-client SPSC
     submission rings, a SPINNING/PARKED doorbell, server-side batch
     draining, and optional sharding with entry-point affinity and
     steal-on-idle.  Zero allocation and no locks after warm-up.
   - the *legacy path* ({!spawn_server} / {!cross_call}): one allocating
     MPSC queue and a per-request mutex/condvar.  Kept as the baseline
     the benchmarks measure the channel path against.

   Compare with {!Locked_registry}, the mutex-guarded shared-pool
   baseline, in the benchmarks. *)

let max_entry_points = 1024
let arg_words = 8

type frame = {
  scratch : Bytes.t;  (** the "stack page": reused, never reallocated *)
  mutable frame_calls : int;
}

type ctx = { frame : frame; mutable domain_index : int }

type handler = ctx -> int array -> unit

(* Per-domain pool: a growable LIFO stack of pooled contexts plus the
   per-domain call counter.  Everything here is domain-private. *)
type pool = { mutable ctxs : ctx array; mutable n : int; mutable calls : int }

type t = {
  handlers : handler option array;
  mutable next_ep : int;
  pool_key : pool Domain.DLS.key;
  registered : int Atomic.t;
}

let scratch_bytes = 4096

let make_frame () = { scratch = Bytes.create scratch_bytes; frame_calls = 0 }
let make_ctx () = { frame = make_frame (); domain_index = 0 }

let create () =
  {
    handlers = Array.make max_entry_points None;
    next_ep = 0;
    pool_key =
      Domain.DLS.new_key (fun () ->
          { ctxs = [| make_ctx (); make_ctx () |]; n = 2; calls = 0 });
    registered = Atomic.make 0;
  }

(* Registration is a management operation: perform it before the domains
   start calling (the paper routes it through Frank for the same
   reason). *)
let register t handler =
  if t.next_ep >= max_entry_points then
    invalid_arg "Fastcall.register: out of entry points";
  let ep = t.next_ep in
  t.next_ep <- ep + 1;
  t.handlers.(ep) <- Some handler;
  Atomic.incr t.registered;
  ep

let registered t = Atomic.get t.registered

exception No_entry of int

let domain_index () = (Domain.self () :> int)

let pool_push pool ctx =
  let n = pool.n in
  if n = Array.length pool.ctxs then begin
    let grown = Array.make (max 4 (2 * n)) ctx in
    Array.blit pool.ctxs 0 grown 0 n;
    pool.ctxs <- grown
  end;
  pool.ctxs.(n) <- ctx;
  pool.n <- n + 1

(* The fast path: array load, DLS stack pop, handler, stack push.  No
   locks, no shared mutable data, no allocation. *)
let call t ~ep args =
  match t.handlers.(ep) with
  | None -> raise (No_entry ep)
  | Some handler ->
      let pool = Domain.DLS.get t.pool_key in
      let ctx =
        let n = pool.n in
        if n = 0 then make_ctx () (* pool empty: grow, like Frank creating a CD *)
        else begin
          pool.n <- n - 1;
          pool.ctxs.(n - 1)
        end
      in
      ctx.domain_index <- domain_index ();
      ctx.frame.frame_calls <- ctx.frame.frame_calls + 1;
      (match handler ctx args with
      | () -> pool_push pool ctx
      | exception e ->
          pool_push pool ctx;
          raise e);
      pool.calls <- pool.calls + 1;
      args.(arg_words - 1)

let local_calls t = (Domain.DLS.get t.pool_key).calls

(* --- cross-domain calls: the channel path ------------------------------ *)

(* N server shards, each owning a doorbell and a registry of client
   channels.  Requests route to [ep mod shards] — entry-point affinity,
   so a service's state stays with one shard, the way the paper keeps a
   request on the processor that owns its worker pool.  A shard that
   finds its own channels dry steals a batch from a sibling before it
   spins down and parks, so the pool scales like Figure 3 instead of
   serialising on one server domain.

   Each shard also carries an execution *ticket* — one atomic word that
   serialises handler execution for that shard.  The shard domain holds
   it for the length of a drain batch; an uncontended client grabs it to
   run its call inline on its own domain (see [channel_call]).  That
   inline case is the paper's PPC proper: a protected procedure call
   executes on the *caller's* processor, and the hand-off to a separate
   server processor is reserved for the contended case. *)

type shard = {
  shard_index : int;
  bell : Doorbell.t;
  chans : Ppc_channel.t array Atomic.t;  (** CAS-append registry *)
  ticket : bool Atomic.t;  (** per-shard handler-execution lock *)
  shard_served : int Atomic.t;
  shard_batches : int Atomic.t;  (** non-empty sweeps *)
  shard_steals : int Atomic.t;  (** requests taken from sibling shards *)
}

type channel_server = {
  cs_table : t;
  cs_shards : shard array;
  cs_stop : bool Atomic.t;
  cs_server_spin : int;
  cs_max_batch : int;
  mutable cs_domains : unit Domain.t array;
}

type client = {
  cl_server : channel_server;
  cl_chans : Ppc_channel.t array;
  cl_inline : bool;
  cl_inlined : int Atomic.t;
}

(* Spinning across domains only pays when the peer can actually run in
   parallel; on a single-core host it burns the timeslice the peer
   needs.  Budgets therefore collapse when the hardware offers no
   parallelism. *)
let default_spin ~parallel ~serial =
  if Domain.recommended_domain_count () > 1 then parallel else serial

let try_ticket sh =
  (not (Atomic.get sh.ticket))
  && Atomic.compare_and_set sh.ticket false true

let release_ticket sh = Atomic.set sh.ticket false

let rec sweep_chans chans run i acc =
  if i >= Array.length chans then acc
  else
    sweep_chans chans run (i + 1) (acc + Ppc_channel.try_drain chans.(i) ~run)

(* A full drain pass over [sh]'s channels, serialised by its ticket. *)
let sweep_shard sh run =
  if not (try_ticket sh) then 0
  else begin
    let n = sweep_chans (Atomic.get sh.chans) run 0 0 in
    release_ticket sh;
    n
  end

let rec chans_pending chans i =
  i < Array.length chans
  && (Ppc_channel.pending chans.(i) || chans_pending chans (i + 1))

(* Steal-on-idle: visit sibling shards round-robin and drain the first
   batch found.  Safe because each victim's ticket serialises us against
   both its shard domain and its inline callers. *)
let rec steal_round server run si k =
  let shards = server.cs_shards in
  if k >= Array.length shards then 0
  else
    let got = sweep_shard shards.((si + k) mod Array.length shards) run in
    if got > 0 then got else steal_round server run si (k + 1)

let shard_loop server sh =
  let run ep args = ignore (call server.cs_table ~ep args) in
  let nonempty () =
    Atomic.get server.cs_stop || chans_pending (Atomic.get sh.chans) 0
  in
  let nshards = Array.length server.cs_shards in
  let rec go idle =
    if Atomic.get server.cs_stop then
      (* Final sweep so work enqueued before shutdown still completes. *)
      ignore (sweep_shard sh run)
    else begin
      let own = sweep_shard sh run in
      let stolen =
        if own = 0 && nshards > 1 then steal_round server run sh.shard_index 1
        else 0
      in
      if stolen > 0 then ignore (Atomic.fetch_and_add sh.shard_steals stolen);
      let did = own + stolen in
      if did > 0 then begin
        ignore (Atomic.fetch_and_add sh.shard_served did);
        Atomic.incr sh.shard_batches;
        go 0
      end
      else if idle < server.cs_server_spin then begin
        Domain.cpu_relax ();
        go (idle + 1)
      end
      else begin
        Doorbell.park sh.bell ~nonempty;
        go 0
      end
    end
  in
  go 0

let spawn_channel_server ?shards:(shards = 1) ?server_spin ?(max_batch = 32) t =
  let server_spin =
    match server_spin with
    | Some s -> s
    | None -> default_spin ~parallel:4096 ~serial:64
  in
  if shards <= 0 then
    invalid_arg "Fastcall.spawn_channel_server: shards must be > 0";
  if max_batch <= 0 then
    invalid_arg "Fastcall.spawn_channel_server: max_batch must be > 0";
  let cs_shards =
    Array.init shards (fun shard_index ->
        {
          shard_index;
          bell = Doorbell.create ();
          chans = Atomic.make [||];
          ticket = Atomic.make false;
          shard_served = Atomic.make 0;
          shard_batches = Atomic.make 0;
          shard_steals = Atomic.make 0;
        })
  in
  let server =
    {
      cs_table = t;
      cs_shards;
      cs_stop = Atomic.make false;
      cs_server_spin = server_spin;
      cs_max_batch = max_batch;
      cs_domains = [||];
    }
  in
  server.cs_domains <-
    Array.map (fun sh -> Domain.spawn (fun () -> shard_loop server sh)) cs_shards;
  server

let rec register_chan sh ch =
  let cur = Atomic.get sh.chans in
  let next = Array.append cur [| ch |] in
  if not (Atomic.compare_and_set sh.chans cur next) then register_chan sh ch

(* Per-calling-domain handle: one channel to every shard.  Connect from
   the domain that will make the calls; a client must not be shared
   across domains (the submission rings are single-producer). *)
let connect ?(slab_capacity = 16) ?(ring_capacity = 64) ?client_spin
    ?(inline_uncontended = true) server =
  let client_spin =
    match client_spin with
    | Some s -> s
    | None -> default_spin ~parallel:2048 ~serial:64
  in
  let cl_chans =
    Array.map
      (fun sh ->
        let ch =
          Ppc_channel.create ~slab_capacity ~ring_capacity ~spin:client_spin
            ~max_batch:server.cs_max_batch ~doorbell:sh.bell
            ~shard:sh.shard_index ~arg_words ()
        in
        register_chan sh ch;
        ch)
      server.cs_shards
  in
  {
    cl_server = server;
    cl_chans;
    cl_inline = inline_uncontended;
    cl_inlined = Atomic.make 0;
  }

(* The channel-path cross-domain call.  Entry-point affinity picks the
   shard.  If the shard is uncontended, the call executes right here on
   the caller's domain under the shard ticket — the paper's PPC proper,
   where a protected procedure call runs on the caller's processor and
   hand-off is the exception.  Otherwise it queues on this client's SPSC
   channel and the shard domain batches it.  Either way: no allocation
   after warm-up.  Per-client ordering is trivially preserved because
   calls are synchronous (at most one outstanding request per client). *)
let channel_call cl ~ep args =
  let chans = cl.cl_chans in
  let idx = ep mod Array.length chans in
  if cl.cl_inline && try_ticket cl.cl_server.cs_shards.(idx) then begin
    let sh = cl.cl_server.cs_shards.(idx) in
    match call cl.cl_server.cs_table ~ep args with
    | rc ->
        release_ticket sh;
        Atomic.incr cl.cl_inlined;
        rc
    | exception e ->
        release_ticket sh;
        raise e
  end
  else Ppc_channel.call chans.(idx) ~ep args

let client_inlined cl = Atomic.get cl.cl_inlined

let shutdown_channel_server server =
  Atomic.set server.cs_stop true;
  Array.iter (fun sh -> Doorbell.wake sh.bell) server.cs_shards;
  Array.iter Domain.join server.cs_domains

let channel_served server =
  Array.fold_left
    (fun acc sh -> acc + Atomic.get sh.shard_served)
    0 server.cs_shards

let channel_batches server =
  Array.fold_left
    (fun acc sh -> acc + Atomic.get sh.shard_batches)
    0 server.cs_shards

let channel_steals server =
  Array.fold_left
    (fun acc sh -> acc + Atomic.get sh.shard_steals)
    0 server.cs_shards

let channel_doorbell_stats server =
  Array.fold_left
    (fun (r, w, p) sh ->
      ( r + Doorbell.rings sh.bell,
        w + Doorbell.wakes sh.bell,
        p + Doorbell.parks sh.bell ))
    (0, 0, 0) server.cs_shards

let client_slab_grows cl =
  Array.fold_left (fun acc ch -> acc + Ppc_channel.slab_grows ch) 0 cl.cl_chans

(* --- cross-domain calls: the legacy MPSC path -------------------------- *)

(* The original cross-domain embodiment, kept as the benchmark baseline:
   a server domain drains one allocating MPSC queue, every call builds a
   fresh request record with its own mutex/condvar, and ringing the
   server always takes its lock.  The channel path above removes all
   three costs; ablation A5 measures the difference.

   The waiting discipline is hybrid: a short spin (wins when the server
   runs on another core), then a mutex/condvar block (necessary when
   cores are scarce — a pure spin-wait livelocks a single-core box). *)

type request = {
  req_ep : int;
  req_args : int array;
  done_ : bool Atomic.t;
  req_mutex : Mutex.t;
  req_cond : Condition.t;
}

type server_domain = {
  queue : request Mpsc_queue.t;
  stop : bool Atomic.t;
  served : int Atomic.t;
  sd_mutex : Mutex.t;
  sd_cond : Condition.t;  (** signalled on every push and on stop *)
  domain : unit Domain.t;
}

let spawn_server t =
  let queue = Mpsc_queue.create () in
  let stop = Atomic.make false in
  let served = Atomic.make 0 in
  let sd_mutex = Mutex.create () in
  let sd_cond = Condition.create () in
  let domain =
    Domain.spawn (fun () ->
        let rec loop () =
          match Mpsc_queue.pop queue with
          | Some req ->
              ignore (call t ~ep:req.req_ep req.req_args);
              Atomic.set req.done_ true;
              Mutex.lock req.req_mutex;
              Condition.signal req.req_cond;
              Mutex.unlock req.req_mutex;
              Atomic.incr served;
              loop ()
          | None ->
              if Atomic.get stop then ()
              else begin
                Mutex.lock sd_mutex;
                while Mpsc_queue.is_empty queue && not (Atomic.get stop) do
                  Condition.wait sd_cond sd_mutex
                done;
                Mutex.unlock sd_mutex;
                loop ()
              end
        in
        loop ())
  in
  { queue; stop; served; sd_mutex; sd_cond; domain }

let cross_call sd ~ep args =
  let req =
    {
      req_ep = ep;
      req_args = args;
      done_ = Atomic.make false;
      req_mutex = Mutex.create ();
      req_cond = Condition.create ();
    }
  in
  Mpsc_queue.push sd.queue req;
  Mutex.lock sd.sd_mutex;
  Condition.signal sd.sd_cond;
  Mutex.unlock sd.sd_mutex;
  (* Brief spin for the multi-core fast case... *)
  let spins = ref 0 in
  while (not (Atomic.get req.done_)) && !spins < 256 do
    incr spins;
    Domain.cpu_relax ()
  done;
  (* ...then block. *)
  if not (Atomic.get req.done_) then begin
    Mutex.lock req.req_mutex;
    while not (Atomic.get req.done_) do
      Condition.wait req.req_cond req.req_mutex
    done;
    Mutex.unlock req.req_mutex
  end;
  args.(arg_words - 1)

let shutdown_server sd =
  Atomic.set sd.stop true;
  Mutex.lock sd.sd_mutex;
  Condition.broadcast sd.sd_cond;
  Mutex.unlock sd.sd_mutex;
  Domain.join sd.domain

let served sd = Atomic.get sd.served
