(* The PPC design pattern on real OCaml 5 domains.

   What the paper's facility does with per-processor worker/CD pools,
   this module does with per-domain state:

   - the service table is a fixed array of *versioned entry-point
     slots*.  Each slot packs a generation counter and a lifecycle state
     ([Ipc_intf.Lifecycle]: active / soft-killed / hard-killed, plus
     free) into one atomic word, carries its handler in a second atomic
     (so registration publishes safely under the OCaml 5 memory model),
     and counts calls in flight on a striped counter.  The warm call
     path is still lock-free and allocation-free: one state load, a
     stripe increment, a recheck, the handler, a stripe decrement.
   - every domain keeps a private LIFO stack of preallocated *frames*
     (argument block + scratch buffer) in domain-local storage: the call
     path allocates nothing and takes no locks (the CD/stack pool, with
     the same serial-reuse-for-warmth property);
   - the 8-word argument convention is kept: handlers mutate an 8-slot
     int array in place.

   Lifecycle (paper Section 4.5.2): [soft_kill] stops new calls and
   frees the slot once calls in progress drain; [hard_kill] also aborts
   calls in progress — a domain cannot be preempted mid-handler, so
   "abort" means the caller's return code becomes [Errc.killed] instead
   of the handler's result.  [exchange] swaps the handler under the same
   ID (Section 4.5.6); calls already in flight finish with the routine
   they latched.  Freed IDs are recycled through a Treiber stack, and
   the generation bump at free time makes stale versioned handles
   detectable — no ABA on ID reuse.

   The acceptance protocol is increment-then-recheck: a caller bumps its
   in-flight stripe, then re-reads the slot state; the call is accepted
   only if the state word is unchanged.  Under sequentially-consistent
   atomics this guarantees a killer's drain check observes every
   accepted call, and the *last decrementer* (killer included) always
   sees the true zero and frees the slot — no accepted call is ever
   lost, and nothing leaks.

   Management operations (register / exchange / kill) serialise on one
   mutex; they are rare by design (the paper routes them through Frank
   for the same reason) and the call path never touches it.

   "Allocates nothing" is literal: the context record is pooled with its
   frame, cleanup is a trap frame rather than a [Fun.protect] closure,
   and the pool is a growable array rather than a cons list, so a warm
   call writes zero minor-heap words (pinned by a test).

   Cross-domain calls come in two flavours:
   - the *channel path* ({!spawn_channel_server} / {!connect} /
     {!channel_call}): preallocated request slabs, per-client SPSC
     submission rings, a SPINNING/PARKED doorbell, server-side batch
     draining, and optional sharding with entry-point affinity and
     steal-on-idle.  Zero allocation and no locks after warm-up.
     {!shutdown_channel_server} quiesces: it refuses new calls, lets
     every accepted call complete, then joins the shard domains.
   - the *legacy path* ({!spawn_server} / {!cross_call}): one allocating
     MPSC queue and a per-request mutex/condvar.  Kept as the baseline
     the benchmarks measure the channel path against.

   Compare with {!Locked_registry}, the mutex-guarded shared-pool
   baseline, in the benchmarks. *)

let max_entry_points = 1024
let arg_words = 8
let rc_slot = arg_words - 1

let err_no_entry = Ipc_intf.Errc.no_entry
let err_killed = Ipc_intf.Errc.killed
let err_handler_fault = Ipc_intf.Errc.handler_fault

type frame = {
  scratch : Bytes.t;  (** the "stack page": reused, never reallocated *)
  mutable frame_calls : int;
}

type ctx = { frame : frame; mutable domain_index : int }

type handler = ctx -> int array -> unit

(* Per-domain pool: a growable LIFO stack of pooled contexts plus the
   per-domain call counter.  Everything here is domain-private. *)
type pool = { mutable ctxs : ctx array; mutable n : int; mutable calls : int }

(* One versioned entry-point slot.  [state] packs
   [generation lsl 2 lor lifecycle]; the generation increments when a
   killed slot is freed, so a handle minted for one service can never
   reach the slot's next tenant.  The handler lives in its own atomic:
   registration writes it *before* flipping the state to active, and the
   OCaml 5 memory model makes the closure's initialising writes visible
   to any caller that saw the state flip. *)
type slot = {
  slot_id : int;
  state : int Atomic.t;
  routine : handler Atomic.t;
  inflight : Striped_counter.t;
  consec_faults : int Atomic.t;
      (** consecutive handler faults since the last success; feeds the
          circuit breaker *)
  faults : int Atomic.t;  (** total handler faults over the slot's life *)
}

(* Lifecycle codes in the low two state bits. *)
let st_free = 0
let st_active = 1
let st_soft = 2
let st_hard = 3

let lc_of st = st land 3
let gen_of st = st lsr 2
let pack gen lc = (gen lsl 2) lor lc

(* A versioned handle: slot ID plus the generation it was minted under.
   Stale handles (the slot was freed, possibly re-registered) are
   rejected on every operation. *)
type ep = { ep_id : int; ep_gen : int }

type t = {
  slots : slot array;
  free_ids : int Treiber_stack.t;  (** killed-and-drained IDs, for reuse *)
  mutable next_ep : int;  (** high-water mark; under [mgmt] *)
  mgmt : Mutex.t;  (** serialises register / exchange / kill *)
  pool_key : pool Domain.DLS.key;
  registered : int Atomic.t;  (** live (not freed) entry points *)
  breaker_threshold : int;
      (** consecutive faults before an entry point is auto-soft-killed *)
  handler_faults : int Atomic.t;  (** table-wide contained-fault count *)
  breaker_trips : int Atomic.t;  (** entry points auto-soft-killed *)
  wakers : (unit -> unit) array Atomic.t;
      (** rung after every successful kill (CAS-append).  A channel
          server registers one so parked shards promptly retire batch
          holds on the killed slot (see [hold_retire]); kills are rare
          management operations, so the broadcast is off the hot path. *)
}

let scratch_bytes = 4096

let make_frame () = { scratch = Bytes.create scratch_bytes; frame_calls = 0 }
let make_ctx () = { frame = make_frame (); domain_index = 0 }

let null_handler : handler = fun _ _ -> ()

let create ?(breaker_threshold = 8) () =
  if breaker_threshold <= 0 then
    invalid_arg "Fastcall.create: breaker_threshold must be > 0";
  {
    slots =
      Array.init max_entry_points (fun slot_id ->
          {
            slot_id;
            state = Atomic.make (pack 0 st_free);
            routine = Atomic.make null_handler;
            inflight = Striped_counter.create ~stripes:8 ();
            consec_faults = Atomic.make 0;
            faults = Atomic.make 0;
          });
    free_ids = Treiber_stack.create ();
    next_ep = 0;
    mgmt = Mutex.create ();
    pool_key =
      Domain.DLS.new_key (fun () ->
          { ctxs = [| make_ctx (); make_ctx () |]; n = 2; calls = 0 });
    registered = Atomic.make 0;
    breaker_threshold;
    handler_faults = Atomic.make 0;
    breaker_trips = Atomic.make 0;
    wakers = Atomic.make [||];
  }

let rec add_waker t f =
  let cur = Atomic.get t.wakers in
  if not (Atomic.compare_and_set t.wakers cur (Array.append cur [| f |])) then
    add_waker t f

(* Free a killed slot once its in-flight count has drained.  Called
   after every decrement (and by the killer itself): the *last*
   decrement in the execution has no later increment, so its gathered
   sum is the true zero and exactly one caller wins the generation-
   bumping CAS.  Lock-free: a killed slot can only transition to free,
   and registration (which could race the freed ID) runs under [mgmt]
   and only ever touches slots popped from [free_ids] — pushed here
   strictly after the CAS. *)
let drain_check t s =
  let st = Atomic.get s.state in
  let lc = lc_of st in
  if
    (lc = st_soft || lc = st_hard)
    && Striped_counter.value s.inflight = 0
    && Atomic.compare_and_set s.state st (pack (gen_of st + 1) st_free)
  then begin
    Atomic.set s.routine null_handler;
    Atomic.decr t.registered;
    Treiber_stack.push t.free_ids s.slot_id
  end

(* Kill an entry point.  [expect_gen] guards handle-based operations
   against ID reuse; pass [-1] for the raw-ID flavour.  Management
   operation (serialised on [mgmt]), but also invoked by the circuit
   breaker from a faulting call — safe there because the caller's
   in-flight hold keeps [drain_check] from freeing the slot under it. *)
let do_kill t id ~expect_gen ~target =
  if id < 0 || id >= max_entry_points then err_no_entry
  else begin
    Mutex.lock t.mgmt;
    let s = t.slots.(id) in
    let st = Atomic.get s.state in
    let rc =
      if expect_gen >= 0 && gen_of st <> expect_gen then err_no_entry
      else if lc_of st = st_active then begin
        Atomic.set s.state (pack (gen_of st) target);
        Ipc_intf.Errc.ok
      end
      else if lc_of st = st_free then err_no_entry
      else err_killed
    in
    Mutex.unlock t.mgmt;
    if rc = Ipc_intf.Errc.ok then begin
      (* Nothing in flight?  Then we are also the last "decrementer". *)
      drain_check t s;
      (* Wake registered waiters (parked channel shards) so any batch
         hold pinning this slot is noticed and retired promptly. *)
      Array.iter (fun f -> f ()) (Atomic.get t.wakers)
    end;
    rc
  end

(* Registration is a management operation: rare, serialised, off the
   call path (the paper routes it through Frank for the same reason). *)
let register_ep t handler =
  Mutex.lock t.mgmt;
  let id =
    match Treiber_stack.pop t.free_ids with
    | Some id -> id
    | None ->
        if t.next_ep >= max_entry_points then begin
          Mutex.unlock t.mgmt;
          invalid_arg "Fastcall.register: out of entry points"
        end
        else begin
          let id = t.next_ep in
          t.next_ep <- id + 1;
          id
        end
  in
  let s = t.slots.(id) in
  let gen = gen_of (Atomic.get s.state) in
  Atomic.set s.routine handler;
  (* Fault history belongs to a slot's tenant, not the slot: a reused ID
     starts with a clean breaker. *)
  Atomic.set s.consec_faults 0;
  Atomic.set s.faults 0;
  Atomic.set s.state (pack gen st_active);
  Atomic.incr t.registered;
  Mutex.unlock t.mgmt;
  { ep_id = id; ep_gen = gen }

let register t handler = (register_ep t handler).ep_id

let ep_id h = h.ep_id

(* Versioned handles as Wire_abi words, so an [ep] can cross a process
   boundary through a shared segment and come back still able to detect
   staleness (the generation travels with the slot). *)
let ep_to_wire h = Ipc_intf.Wire_abi.pack_handle ~slot:h.ep_id ~gen:h.ep_gen

let ep_of_wire w =
  {
    ep_id = Ipc_intf.Wire_abi.handle_slot w;
    ep_gen = Ipc_intf.Wire_abi.handle_gen w;
  }

let registered t = Atomic.get t.registered

exception No_entry of int

let domain_index () = (Domain.self () :> int)

let pool_push pool ctx =
  let n = pool.n in
  if n = Array.length pool.ctxs then begin
    let grown = Array.make (max 4 (2 * n)) ctx in
    Array.blit pool.ctxs 0 grown 0 n;
    pool.ctxs <- grown
  end;
  pool.ctxs.(n) <- ctx;
  pool.n <- n + 1

(* Post-handler epilogue.  The pre-decrement state read is safe to
   interpret: our in-flight hold pins the generation, so a hard state
   here is *our* service's hard-kill and the caller must see
   [err_killed] (the runtime's "abort", since a running OCaml function
   cannot be preempted).  A soft kill leaves the completed call's result
   untouched — that is the whole point of draining.  The killed-state
   re-read for the drain check must come *after* the decrement, or a
   kill landing between read and decrement would never be finalised. *)
let retire_call t s args ~flip_rc =
  (if flip_rc && lc_of (Atomic.get s.state) = st_hard then
     args.(rc_slot) <- err_killed);
  Striped_counter.add s.inflight (-1);
  drain_check t s

(* A handler raised: contain it.  Cold path (allocation is fine here).
   The caller gets [err_handler_fault]; the consecutive-fault counter
   feeds the circuit breaker, which auto-soft-kills the entry point at
   the table's threshold — a trip is nothing more than the PR-3
   [soft_kill], so in-flight calls drain and the slot frees normally.
   We still hold our in-flight stripe, so the slot cannot be freed (and
   its generation cannot move) under the kill.  [fetch_and_add] makes
   exactly one faulting caller cross the threshold boundary; late
   crossers find the slot already soft-killed and [do_kill] answers
   [err_killed], so a trip is counted once. *)
let fault_accepted t s args =
  Atomic.incr t.handler_faults;
  Atomic.incr s.faults;
  let consec = 1 + Atomic.fetch_and_add s.consec_faults 1 in
  if
    consec >= t.breaker_threshold
    && do_kill t s.slot_id ~expect_gen:(-1) ~target:st_soft = Ipc_intf.Errc.ok
  then Atomic.incr t.breaker_trips;
  args.(rc_slot) <- err_handler_fault;
  (* [flip_rc] so a concurrent hard-kill still overrides to killed. *)
  retire_call t s args ~flip_rc:true;
  args.(rc_slot)

(* Accepted-call body (in-flight hold already taken): handler latch,
   DLS stack pop, handler, stack push, retire.  No locks, no allocation.
   Handler exceptions never escape: they retire the call with
   [err_handler_fault] (see [fault_accepted]). *)
let run_accepted t s args =
  let handler = Atomic.get s.routine in
  let pool = Domain.DLS.get t.pool_key in
  let ctx =
    let n = pool.n in
    if n = 0 then make_ctx () (* pool empty: grow, like Frank creating a CD *)
    else begin
      pool.n <- n - 1;
      pool.ctxs.(n - 1)
    end
  in
  ctx.domain_index <- domain_index ();
  ctx.frame.frame_calls <- ctx.frame.frame_calls + 1;
  match handler ctx args with
  | () ->
      pool_push pool ctx;
      pool.calls <- pool.calls + 1;
      (* One extra load on the warm path; the store only happens on the
         first success after a fault, so the line stays clean. *)
      if Atomic.get s.consec_faults <> 0 then Atomic.set s.consec_faults 0;
      retire_call t s args ~flip_rc:true;
      args.(rc_slot)
  | exception _ ->
      pool_push pool ctx;
      fault_accepted t s args

(* The fast path, raw-ID flavour (what a client holds after a name
   lookup): state load, stripe increment, recheck, handler.  Unbound
   IDs raise [No_entry] as they always did; killed-but-not-yet-freed
   IDs answer [err_killed]. *)
let call t ~ep args =
  if ep < 0 || ep >= max_entry_points then raise (No_entry ep);
  let s = t.slots.(ep) in
  let st0 = Atomic.get s.state in
  if lc_of st0 <> st_active then
    if lc_of st0 = st_free then raise (No_entry ep)
    else begin
      args.(rc_slot) <- err_killed;
      err_killed
    end
  else begin
    Striped_counter.incr s.inflight;
    if Atomic.get s.state <> st0 then begin
      (* Killed (or even freed and re-registered) between the state load
         and the increment: withdraw.  The transient increment may have
         held up a concurrent drain, so re-run its check. *)
      Striped_counter.add s.inflight (-1);
      drain_check t s;
      args.(rc_slot) <- err_killed;
      err_killed
    end
    else run_accepted t s args
  end

(* The fast path, versioned-handle flavour: additionally proof against
   ID reuse, and never raises — rejections come back as [Errc] codes. *)
let call_h t h args =
  let s = t.slots.(h.ep_id) in
  let st0 = Atomic.get s.state in
  if st0 = pack h.ep_gen st_active then begin
    Striped_counter.incr s.inflight;
    if Atomic.get s.state <> st0 then begin
      Striped_counter.add s.inflight (-1);
      drain_check t s;
      args.(rc_slot) <- err_killed;
      err_killed
    end
    else run_accepted t s args
  end
  else begin
    let rc =
      if gen_of st0 = h.ep_gen && lc_of st0 <> st_free then err_killed
      else err_no_entry
    in
    args.(rc_slot) <- rc;
    rc
  end

(* --- amortized batch acceptance (the containment tax, paid per batch) --

   PR5's containment put two striped-counter RMWs, a state recheck and
   an 8-stripe drain gather on *every* call.  A [hold] amortizes all of
   that to batch scope: one increment of the slot's striped in-flight
   counter is taken at acquisition and stands for every call the holder
   runs until the hold is retired, so the per-call admission check
   collapses to a generation-stamp compare — the state word must still
   equal the word stamped at acquisition.  Any lifecycle transition
   (soft or hard kill, breaker trip, free) changes that word, so a
   stale hold can never admit a call: the compare fails, the hold is
   retired (releasing the in-flight reservation, which lets the killed
   slot drain), and acceptance is re-run from scratch.

   What *is* batched is the drain bookkeeping: a killed slot cannot be
   freed while a hold pins it, so kill-to-free latency stretches by at
   most the holder's current batch (the staleness window — see
   ARCHITECTURE §10).  What is *not* batched is fault visibility: the
   per-call stamp compare observes a kill exactly as fast as the
   per-call path did, the post-handler hard-kill check still flips the
   RC, and a handler fault still feeds the breaker immediately.

   Holds are single-holder by contract: the channel path stores one per
   shard, guarded by the shard ticket.  The fields are atomics only so
   a parked shard's doorbell recheck may read them without the ticket
   ([hold_stale]); all writes happen under the owner's serialisation.
   A kill wakes registered doorbells ([t.wakers]) so a hold parked on a
   killed slot is retired promptly rather than at the next call. *)

type hold = {
  h_id : int Atomic.t;  (** held slot, [-1] when empty *)
  h_st : int Atomic.t;  (** full state word stamped at acquisition *)
}

let make_hold () = { h_id = Atomic.make (-1); h_st = Atomic.make 0 }

let hold_retire t hold =
  let id = Atomic.get hold.h_id in
  if id >= 0 then begin
    let s = t.slots.(id) in
    Atomic.set hold.h_id (-1);
    Striped_counter.add s.inflight (-1);
    drain_check t s
  end

(* True when the held slot's state word moved since acquisition — a
   kill landed and the hold must be retired so the slot can drain.
   Safe without the ticket: [h_st] only ever stores active-state words,
   and a torn [h_id]/[h_st] pair can only report a false *stale* (the
   harmless direction — a spurious retire pass). *)
let hold_stale t hold =
  let id = Atomic.get hold.h_id in
  id >= 0 && Atomic.get t.slots.(id).state <> Atomic.get hold.h_st

(* Incr-then-recheck, batch flavour: the same acceptance protocol as
   [call], but the increment is kept as the hold's reservation instead
   of being paired with a per-call decrement. *)
let hold_acquire t hold ep =
  let s = t.slots.(ep) in
  let st0 = Atomic.get s.state in
  lc_of st0 = st_active
  && begin
       Striped_counter.incr s.inflight;
       if Atomic.get s.state <> st0 then begin
         Striped_counter.add s.inflight (-1);
         drain_check t s;
         false
       end
       else begin
         (* [h_st] before [h_id]: racy readers key on [h_id >= 0]. *)
         Atomic.set hold.h_st st0;
         Atomic.set hold.h_id ep;
         true
       end
     end

(* A handler raised under a hold: identical containment to
   [fault_accepted], minus the per-call decrement (the hold's
   reservation still stands — which is also what keeps the breaker's
   [do_kill] from freeing the slot under us). *)
let fault_held t s args =
  Atomic.incr t.handler_faults;
  Atomic.incr s.faults;
  let consec = 1 + Atomic.fetch_and_add s.consec_faults 1 in
  if
    consec >= t.breaker_threshold
    && do_kill t s.slot_id ~expect_gen:(-1) ~target:st_soft = Ipc_intf.Errc.ok
  then Atomic.incr t.breaker_trips;
  args.(rc_slot) <- err_handler_fault;
  if lc_of (Atomic.get s.state) = st_hard then args.(rc_slot) <- err_killed;
  args.(rc_slot)

(* Accepted-call body under a hold: routine latch, pooled context,
   handler, post-handler hard-kill check.  No RMW anywhere — the only
   atomics are loads.  The routine is re-read per call (not cached in
   the hold) so [exchange], which swaps the handler without moving the
   state word, takes effect on the very next admitted call. *)
let run_held t s args =
  let handler = Atomic.get s.routine in
  let pool = Domain.DLS.get t.pool_key in
  let ctx =
    let n = pool.n in
    if n = 0 then make_ctx ()
    else begin
      pool.n <- n - 1;
      pool.ctxs.(n - 1)
    end
  in
  ctx.domain_index <- domain_index ();
  ctx.frame.frame_calls <- ctx.frame.frame_calls + 1;
  match handler ctx args with
  | () ->
      pool_push pool ctx;
      pool.calls <- pool.calls + 1;
      if Atomic.get s.consec_faults <> 0 then Atomic.set s.consec_faults 0;
      (* Same one-load epilogue as [retire_call]: a hard kill landing
         mid-handler must override the result with [err_killed]. *)
      if lc_of (Atomic.get s.state) = st_hard then args.(rc_slot) <- err_killed;
      args.(rc_slot)
  | exception _ ->
      pool_push pool ctx;
      fault_held t s args

(* The amortized fast path.  Warm case (hold matches, state unmoved):
   three atomic loads to admit, then the handler.  Cold case: retire
   whatever was held, try to acquire a hold on [ep], and fall back to
   the per-call [call] when acceptance fails — which reproduces the
   per-call error taxonomy exactly ([No_entry] for free slots,
   [err_killed] for killed-but-draining ones). *)
let hold_call t hold ~ep args =
  if
    ep >= 0
    && ep < max_entry_points
    && Atomic.get hold.h_id = ep
    && Atomic.get t.slots.(ep).state = Atomic.get hold.h_st
  then run_held t t.slots.(ep) args
  else begin
    hold_retire t hold;
    if ep < 0 || ep >= max_entry_points then raise (No_entry ep);
    if hold_acquire t hold ep then run_held t t.slots.(ep) args
    else call t ~ep args
  end

module Batch = struct
  type nonrec hold = hold

  let hold = make_hold
  let call = hold_call
  let retire = hold_retire
  let held h = Atomic.get h.h_id
end

let local_calls t = (Domain.DLS.get t.pool_key).calls

(* Management of the calling domain's context pool: the paper's
   grow-pool and reclaim operations (Section 2 — pre-populate for a
   known burst, shrink peak-time pools back to steady state). *)

let warm_pool t n =
  let pool = Domain.DLS.get t.pool_key in
  for _ = 1 to n do
    pool_push pool (make_ctx ())
  done

let trim_pool t ~max_ctxs =
  let max_ctxs = Stdlib.max 0 max_ctxs in
  let pool = Domain.DLS.get t.pool_key in
  if pool.n <= max_ctxs then 0
  else begin
    let retired = pool.n - max_ctxs in
    pool.ctxs <- Array.sub pool.ctxs 0 max_ctxs;
    pool.n <- max_ctxs;
    retired
  end

let pool_ctxs t = (Domain.DLS.get t.pool_key).n

(* --- lifecycle management ---------------------------------------------- *)

let soft_kill t ~ep = do_kill t ep ~expect_gen:(-1) ~target:st_soft
let hard_kill t ~ep = do_kill t ep ~expect_gen:(-1) ~target:st_hard
let soft_kill_h t h = do_kill t h.ep_id ~expect_gen:h.ep_gen ~target:st_soft
let hard_kill_h t h = do_kill t h.ep_id ~expect_gen:h.ep_gen ~target:st_hard

let do_exchange t id ~expect_gen handler =
  if id < 0 || id >= max_entry_points then err_no_entry
  else begin
    Mutex.lock t.mgmt;
    let s = t.slots.(id) in
    let st = Atomic.get s.state in
    let rc =
      if expect_gen >= 0 && gen_of st <> expect_gen then err_no_entry
      else if lc_of st = st_active then begin
        (* Same ID, new routine.  Calls in flight latched the old
           handler at acceptance and finish with it. *)
        Atomic.set s.routine handler;
        Ipc_intf.Errc.ok
      end
      else if lc_of st = st_free then err_no_entry
      else err_killed
    in
    Mutex.unlock t.mgmt;
    rc
  end

let exchange t ~ep handler = do_exchange t ep ~expect_gen:(-1) handler
let exchange_h t h handler = do_exchange t h.ep_id ~expect_gen:h.ep_gen handler

let in_flight t ~ep =
  if ep < 0 || ep >= max_entry_points then 0
  else Striped_counter.value t.slots.(ep).inflight

let in_flight_h t h =
  let s = t.slots.(h.ep_id) in
  if gen_of (Atomic.get s.state) <> h.ep_gen then 0
  else Striped_counter.value s.inflight

let lifecycle t ~ep =
  if ep < 0 || ep >= max_entry_points then None
  else
    let lc = lc_of (Atomic.get t.slots.(ep).state) in
    if lc = st_active then Some Ipc_intf.Lifecycle.Active
    else if lc = st_soft then Some Ipc_intf.Lifecycle.Soft_killed
    else if lc = st_hard then Some Ipc_intf.Lifecycle.Hard_killed
    else None

(* --- fault-containment observability ----------------------------------- *)

let handler_faults t = Atomic.get t.handler_faults
let breaker_trips t = Atomic.get t.breaker_trips
let breaker_threshold t = t.breaker_threshold

let ep_faults t ~ep =
  if ep < 0 || ep >= max_entry_points then 0
  else Atomic.get t.slots.(ep).faults

(* --- cross-domain calls: the channel path ------------------------------ *)

(* N server shards, each owning a doorbell and a registry of client
   channels.  Requests route to [ep mod shards] — entry-point affinity,
   so a service's state stays with one shard, the way the paper keeps a
   request on the processor that owns its worker pool.  A shard that
   finds its own channels dry steals a batch from a sibling before it
   spins down and parks, so the pool scales like Figure 3 instead of
   serialising on one server domain.

   Each shard also carries an execution *ticket* — one atomic word that
   serialises handler execution for that shard.  The shard domain holds
   it for the length of a drain batch; an uncontended client grabs it to
   run its call inline on its own domain (see [channel_call]).  That
   inline case is the paper's PPC proper: a protected procedure call
   executes on the *caller's* processor, and the hand-off to a separate
   server processor is reserved for the contended case. *)

type shard = {
  shard_index : int;
  bell : Doorbell.t;
  chans : Ppc_channel.t array Atomic.t;  (** CAS-append registry *)
  ticket : bool Atomic.t;  (** per-shard handler-execution lock *)
  sh_hold : hold;
      (** the shard's batch-acceptance cache, guarded by [ticket]:
          shared by the shard domain's sweeps, thieves draining this
          shard, and inline callers — whoever holds the ticket *)
  mutable sh_run : int -> int array -> unit;
      (** prebuilt drain body (hold-based call + served count), so a
          sweep never allocates a closure; set once at spawn *)
  shard_served : int Atomic.t;
  shard_batches : int Atomic.t;  (** non-empty sweeps *)
  shard_steals : int Atomic.t;  (** requests taken from sibling shards *)
  heartbeat : int Atomic.t;  (** bumped every loop iteration; liveness word *)
  poison : bool Atomic.t;  (** injected crash: the shard domain exits *)
}

type channel_server = {
  cs_table : t;
  cs_shards : shard array;
  cs_stop : bool Atomic.t;
  cs_draining : bool Atomic.t;  (** set first on shutdown: refuse new calls *)
  cs_actives : int Atomic.t array Atomic.t;
      (** every client's in-flight gate, CAS-append; summed to quiesce *)
  cs_server_spin : int;
  cs_max_batch : int;
  mutable cs_domains : unit Domain.t array;
  cs_dmutex : Mutex.t;
      (** guards [cs_domains] appends (supervisor respawn vs shutdown) *)
  mutable cs_supervisor : unit Domain.t option;
  cs_supervisor_poll : int;  (** cpu_relax iterations between sweeps *)
  cs_respawns : int Atomic.t;  (** shard domains the supervisor restarted *)
  cs_fail_swept : int Atomic.t;
      (** in-flight requests of dead shards failed with [handler_fault] *)
}

type client = {
  cl_server : channel_server;
  cl_chans : Ppc_channel.t array;
  cl_inline : bool;
  mutable cl_inlined : int;
      (** single-writer (the owning client domain); plain on purpose *)
  cl_active : int Atomic.t;
      (** queued calls past the draining gate, not yet done.  Inline
          calls are not counted here: their quiesce discipline is the
          shard ticket itself (see [shutdown_channel_server]). *)
}

(* Spinning across domains only pays when the peer can actually run in
   parallel; on a single-core host it burns the timeslice the peer
   needs.  Budgets therefore collapse when the hardware offers no
   parallelism. *)
let default_spin ~parallel ~serial =
  if Domain.recommended_domain_count () > 1 then parallel else serial

let try_ticket sh =
  (not (Atomic.get sh.ticket))
  && Atomic.compare_and_set sh.ticket false true

let release_ticket sh = Atomic.set sh.ticket false

let rec sweep_chans chans run i acc =
  if i >= Array.length chans then acc
  else
    sweep_chans chans run (i + 1) (acc + Ppc_channel.try_drain chans.(i) ~run)

(* A full drain pass over [sh]'s channels, serialised by its ticket.
   Before the ticket goes back, a hold gone stale (its slot was killed)
   is retired so the slot can drain; a *fresh* hold is deliberately left
   in place — it is the amortization, spanning batches until a
   lifecycle event invalidates it. *)
let sweep_shard t sh run =
  if not (try_ticket sh) then 0
  else begin
    let n = sweep_chans (Atomic.get sh.chans) run 0 0 in
    if hold_stale t sh.sh_hold then hold_retire t sh.sh_hold;
    release_ticket sh;
    n
  end

let rec chans_pending chans i =
  i < Array.length chans
  && (Ppc_channel.pending chans.(i) || chans_pending chans (i + 1))

(* Steal-on-idle: visit sibling shards round-robin and drain the first
   batch found.  Safe because each victim's ticket serialises us against
   both its shard domain and its inline callers — and because the sweep
   uses the *victim's* drain body, so the batch hold it touches is the
   one guarded by the ticket we won. *)
let rec steal_round server si k =
  let shards = server.cs_shards in
  if k >= Array.length shards then 0
  else
    let victim = shards.((si + k) mod Array.length shards) in
    let got = sweep_shard server.cs_table victim victim.sh_run in
    if got > 0 then got else steal_round server si (k + 1)

let shard_loop server sh =
  let t = server.cs_table in
  (* The doorbell recheck includes hold staleness: a kill rings every
     registered bell ([t.wakers]), and folding the staleness test into
     the under-mutex recheck closes the park/kill race the same way the
     work recheck closes park/ring — a shard can never sleep through
     the retire it owes a killed slot. *)
  let nonempty () =
    Atomic.get server.cs_stop
    || Atomic.get sh.poison
    || hold_stale t sh.sh_hold
    || chans_pending (Atomic.get sh.chans) 0
  in
  let nshards = Array.length server.cs_shards in
  let rec go idle =
    Atomic.incr sh.heartbeat;
    if Atomic.get sh.poison then
      (* Injected crash ({!kill_shard}): exit without serving the
         backlog — and without retiring the batch hold, exactly as a
         dead domain would — the supervisor's job to clean up. *)
      ()
    else if Atomic.get server.cs_stop then begin
      (* Final sweep so work enqueued before shutdown still completes;
         then retire whatever hold the sweeps left, so no slot stays
         pinned by a server that no longer exists. *)
      ignore (sweep_shard t sh sh.sh_run);
      while not (try_ticket sh) do
        Domain.cpu_relax ()
      done;
      hold_retire t sh.sh_hold;
      release_ticket sh
    end
    else begin
      let own = sweep_shard t sh sh.sh_run in
      let stolen =
        if own = 0 && nshards > 1 then steal_round server sh.shard_index 1
        else 0
      in
      if stolen > 0 then ignore (Atomic.fetch_and_add sh.shard_steals stolen);
      let did = own + stolen in
      if did > 0 then begin
        Atomic.incr sh.shard_batches;
        go 0
      end
      else if idle < server.cs_server_spin then begin
        Domain.cpu_relax ();
        go (idle + 1)
      end
      else begin
        Doorbell.park sh.bell ~nonempty;
        go 0
      end
    end
  in
  go 0

(* --- shard supervision ------------------------------------------------- *)

(* Declare a shard dead, fail its visible backlog, restart it.  The
   fail-sweep runs under the shard ticket (like any consumer), so it can
   only touch rings no live consumer owns; every request it pops answers
   [err_handler_fault] — the request may or may not have started when
   the shard died, which is exactly what that code means — and parked
   clients wake through the normal deferred-signal pass.  The respawned
   domain serves whatever the sweep could not reach.  Spawning is
   serialised with shutdown on [cs_dmutex]: once [cs_stop] is set no new
   domain can appear, so [shutdown_channel_server] joins a stable set. *)
let revive_shard server sh =
  let fail_run _ep args =
    args.(rc_slot) <- err_handler_fault;
    Atomic.incr server.cs_fail_swept
  in
  let swept = sweep_shard server.cs_table sh fail_run in
  if swept > 0 then ignore swept;
  (* The dead shard cannot retire the batch hold it died with; do it on
     its behalf (under the ticket, like any consumer) so no slot stays
     pinned by a corpse.  Retiring a *fresh* hold here is harmless: the
     next hold-based call simply re-acquires. *)
  if try_ticket sh then begin
    hold_retire server.cs_table sh.sh_hold;
    release_ticket sh
  end;
  Mutex.lock server.cs_dmutex;
  if not (Atomic.get server.cs_stop) then begin
    Atomic.set sh.poison false;
    (* Count before spawning: an observer that sees the revived shard
       serve a call must also see the respawn counted. *)
    Atomic.incr server.cs_respawns;
    let d = Domain.spawn (fun () -> shard_loop server sh) in
    server.cs_domains <- Array.append server.cs_domains [| d |]
  end;
  Mutex.unlock server.cs_dmutex

(* The supervisor polls every shard's heartbeat.  A shard is dead when
   it was poisoned ({!kill_shard}), or *wedged* when its heartbeat
   stayed frozen across two consecutive polls while work was visibly
   pending (one frozen poll can be an unlucky sample of a shard that is
   just waking; two in a row with a backlog cannot — a healthy shard
   bumps the word every loop iteration).  Respawning a wedged shard is
   safe even if the old domain later resumes: the shard ticket and the
   per-channel consumer locks serialise the two, the same property that
   makes steal-on-idle sound. *)
let supervisor_loop server =
  let shards = server.cs_shards in
  let n = Array.length shards in
  let last_hb = Array.make n (-1) in
  let suspect = Array.make n 0 in
  let rec pause k = if k > 0 then (Domain.cpu_relax (); pause (k - 1)) in
  let rec go () =
    if not (Atomic.get server.cs_stop) then begin
      pause server.cs_supervisor_poll;
      for i = 0 to n - 1 do
        let sh = shards.(i) in
        let dead =
          if Atomic.get sh.poison then true
          else begin
            let hb = Atomic.get sh.heartbeat in
            let frozen = hb = last_hb.(i) in
            last_hb.(i) <- hb;
            if frozen && chans_pending (Atomic.get sh.chans) 0 then begin
              suspect.(i) <- suspect.(i) + 1;
              suspect.(i) >= 2
            end
            else begin
              suspect.(i) <- 0;
              false
            end
          end
        in
        if dead && not (Atomic.get server.cs_stop) then begin
          suspect.(i) <- 0;
          revive_shard server sh
        end
      done;
      go ()
    end
  in
  go ()

let spawn_channel_server ?shards:(shards = 1) ?server_spin ?(max_batch = 32)
    ?(supervise = false) ?(supervisor_poll = 20_000) t =
  let server_spin =
    match server_spin with
    | Some s -> s
    | None -> default_spin ~parallel:4096 ~serial:64
  in
  if shards <= 0 then
    invalid_arg "Fastcall.spawn_channel_server: shards must be > 0";
  if max_batch <= 0 then
    invalid_arg "Fastcall.spawn_channel_server: max_batch must be > 0";
  if supervisor_poll <= 0 then
    invalid_arg "Fastcall.spawn_channel_server: supervisor_poll must be > 0";
  let cs_shards =
    Array.init shards (fun shard_index ->
        {
          shard_index;
          bell = Doorbell.create ();
          chans = Atomic.make [||];
          ticket = Atomic.make false;
          sh_hold = make_hold ();
          sh_run = (fun _ _ -> ());
          shard_served = Atomic.make 0;
          shard_batches = Atomic.make 0;
          shard_steals = Atomic.make 0;
          heartbeat = Atomic.make 0;
          poison = Atomic.make false;
        })
  in
  (* The drain body, built once per shard: a hold-based call (the
     amortized fast path) plus the served count.  A request for an
     entry point killed and freed while it sat in a ring must answer,
     not kill the shard domain; a handler that raises is contained
     inside the call, so no request can take a consumer down.  The
     served counter bumps *before* the channel marks the request
     complete, so a caller that has seen its call return also sees it
     counted. *)
  Array.iter
    (fun sh ->
      sh.sh_run <-
        (fun ep args ->
          (match hold_call t sh.sh_hold ~ep args with
          | (_ : int) -> ()
          | exception No_entry _ -> args.(rc_slot) <- err_no_entry);
          Atomic.incr sh.shard_served))
    cs_shards;
  let server =
    {
      cs_table = t;
      cs_shards;
      cs_stop = Atomic.make false;
      cs_draining = Atomic.make false;
      cs_actives = Atomic.make [||];
      cs_server_spin = server_spin;
      cs_max_batch = max_batch;
      cs_domains = [||];
      cs_dmutex = Mutex.create ();
      cs_supervisor = None;
      cs_supervisor_poll = supervisor_poll;
      cs_respawns = Atomic.make 0;
      cs_fail_swept = Atomic.make 0;
    }
  in
  (* A kill must be able to reach a shard that parked while its batch
     hold still pins the killed slot: ring every bell so the shard wakes
     and retires it.  The waker outlives the server harmlessly — after
     [cs_stop] it is a no-op. *)
  add_waker t (fun () ->
      if not (Atomic.get server.cs_stop) then
        Array.iter (fun sh -> Doorbell.wake sh.bell) cs_shards);
  server.cs_domains <-
    Array.map (fun sh -> Domain.spawn (fun () -> shard_loop server sh)) cs_shards;
  if supervise then
    server.cs_supervisor <-
      Some (Domain.spawn (fun () -> supervisor_loop server));
  server

(* Runtime fault injector: simulate the death of a shard domain.  The
   shard exits its loop without serving its backlog; clients of that
   shard wedge (or time out, on the deadline path) until a supervisor
   revives it. *)
let kill_shard server ~shard =
  if shard < 0 || shard >= Array.length server.cs_shards then
    invalid_arg "Fastcall.kill_shard: no such shard";
  let sh = server.cs_shards.(shard) in
  Atomic.set sh.poison true;
  Doorbell.wake sh.bell

(* Runtime fault injector: slow every ring of the shard's doorbell (see
   {!Doorbell.inject_delay}).  [0] restores normal behaviour. *)
let inject_doorbell_delay server ~shard n =
  if shard < 0 || shard >= Array.length server.cs_shards then
    invalid_arg "Fastcall.inject_doorbell_delay: no such shard";
  Doorbell.inject_delay server.cs_shards.(shard).bell n

let rec register_chan sh ch =
  let cur = Atomic.get sh.chans in
  let next = Array.append cur [| ch |] in
  if not (Atomic.compare_and_set sh.chans cur next) then register_chan sh ch

let rec register_active server a =
  let cur = Atomic.get server.cs_actives in
  let next = Array.append cur [| a |] in
  if not (Atomic.compare_and_set server.cs_actives cur next) then
    register_active server a

(* Per-calling-domain handle: one channel to every shard.  Connect from
   the domain that will make the calls; a client must not be shared
   across domains (the submission rings are single-producer). *)
let connect ?(slab_capacity = 16) ?slab_max ?(ring_capacity = 64) ?client_spin
    ?(inline_uncontended = true) server =
  let client_spin =
    match client_spin with
    | Some s -> s
    | None -> default_spin ~parallel:2048 ~serial:64
  in
  let cl_chans =
    Array.map
      (fun sh ->
        let ch =
          Ppc_channel.create ~slab_capacity ?slab_max ~ring_capacity
            ~spin:client_spin ~max_batch:server.cs_max_batch ~doorbell:sh.bell
            ~shard:sh.shard_index ~arg_words ()
        in
        register_chan sh ch;
        ch)
      server.cs_shards
  in
  let cl_active = Atomic.make 0 in
  register_active server cl_active;
  {
    cl_server = server;
    cl_chans;
    cl_inline = inline_uncontended;
    cl_inlined = 0;
    cl_active;
  }

(* The channel-path cross-domain call.  Entry-point affinity picks the
   shard.  If the shard is uncontended, the call executes right here on
   the caller's domain under the shard ticket — the paper's PPC proper,
   where a protected procedure call runs on the caller's processor and
   hand-off is the exception.  Otherwise it queues on this client's SPSC
   channel and the shard domain batches it.  Either way: no allocation
   after warm-up.  Per-client ordering is trivially preserved because
   calls are synchronous (at most one outstanding request per client).

   Shutdown gating differs by path.  The queued path keeps the counting
   gate: increment [cl_active], re-read the draining flag — a quiescing
   server either rejects the call or is guaranteed to see its gate and
   wait (the increment-then-recheck argument).  The inline path's gate
   is the shard ticket itself: the draining flag is checked *under* the
   ticket, and [shutdown_channel_server] acquires every ticket once
   after setting the flag, so an inline call either observed draining
   or completed strictly before the shutdown's acquisition — no
   per-call RMW on the inline fast path.  Lifecycle rejections come
   back as [Errc] codes, never exceptions. *)
let channel_call cl ~ep args =
  let chans = cl.cl_chans in
  let idx = ep mod Array.length chans in
  let server = cl.cl_server in
  let sh = server.cs_shards.(idx) in
  if cl.cl_inline && try_ticket sh then
    if Atomic.get server.cs_draining then begin
      release_ticket sh;
      args.(rc_slot) <- err_killed;
      err_killed
    end
    else begin
      match hold_call server.cs_table sh.sh_hold ~ep args with
      | rc ->
          release_ticket sh;
          cl.cl_inlined <- cl.cl_inlined + 1;
          rc
      | exception No_entry _ ->
          release_ticket sh;
          cl.cl_inlined <- cl.cl_inlined + 1;
          args.(rc_slot) <- err_no_entry;
          err_no_entry
      | exception e ->
          release_ticket sh;
          raise e
    end
  else begin
    Atomic.incr cl.cl_active;
    if Atomic.get server.cs_draining then begin
      Atomic.decr cl.cl_active;
      args.(rc_slot) <- err_killed;
      err_killed
    end
    else begin
      (match Ppc_channel.call chans.(idx) ~ep args with
      | (_ : int) -> ()
      | exception e ->
          Atomic.decr cl.cl_active;
          raise e);
      Atomic.decr cl.cl_active;
      args.(rc_slot)
    end
  end

(* Deadline flavour ([deadline] in nanoseconds).  Always takes the
   queued path: the point of a deadline is bounding the wait on
   *someone else's* progress, and a call inlined under the shard ticket
   runs on this very domain — there is nothing to time out on.  The
   spin/timed-park/abandonment protocol lives in
   {!Ppc_channel.call_deadline}; a timed-out call decrements the
   quiesce gate immediately (its abandoned cell is the server's to
   reclaim, and the shutdown sweep drains rings anyway), so a client
   stuck behind a dead shard never wedges [shutdown_channel_server]. *)
let channel_call_deadline cl ~ep ~deadline args =
  Atomic.incr cl.cl_active;
  if Atomic.get cl.cl_server.cs_draining then begin
    Atomic.decr cl.cl_active;
    args.(rc_slot) <- err_killed;
    err_killed
  end
  else begin
    let chans = cl.cl_chans in
    let idx = ep mod Array.length chans in
    ignore (Ppc_channel.call_deadline chans.(idx) ~ep ~deadline args : int);
    Atomic.decr cl.cl_active;
    args.(rc_slot)
  end

let client_inlined cl = cl.cl_inlined

(* Quiesce, then join (Section 4.5.2's soft-kill discipline applied to
   the whole server): refuse new calls, wait for every call already
   past the gate to complete — the shards are still serving during the
   wait — and only then stop the shard domains.  Every accepted call
   completes; every refused call sees [err_killed].

   Inline calls are quiesced by the ticket pass: after the draining
   flag is up, acquiring and releasing every shard ticket once proves
   no inline call admitted before the flag is still running (it held
   the ticket we just took), and any inline call admitted after will
   see the flag under its own ticket and refuse.  The pass also retires
   each shard's batch hold — covering holds stranded by a poisoned
   (dead, unsupervised) shard, whose domain is no longer there to
   retire them. *)
let shutdown_channel_server server =
  Atomic.set server.cs_draining true;
  Array.iter
    (fun sh ->
      while not (try_ticket sh) do
        Domain.cpu_relax ()
      done;
      hold_retire server.cs_table sh.sh_hold;
      release_ticket sh)
    server.cs_shards;
  let sum_actives () =
    Array.fold_left
      (fun acc a -> acc + Atomic.get a)
      0
      (Atomic.get server.cs_actives)
  in
  while sum_actives () > 0 do
    Domain.cpu_relax ()
  done;
  Atomic.set server.cs_stop true;
  Array.iter (fun sh -> Doorbell.wake sh.bell) server.cs_shards;
  (* Join the supervisor first: once it has seen [cs_stop] no further
     respawn can start (checked under [cs_dmutex]), so the domain array
     read below is the final set. *)
  (match server.cs_supervisor with
  | Some d ->
      Domain.join d;
      server.cs_supervisor <- None
  | None -> ());
  Mutex.lock server.cs_dmutex;
  let domains = server.cs_domains in
  Mutex.unlock server.cs_dmutex;
  Array.iter Domain.join domains

let channel_served server =
  Array.fold_left
    (fun acc sh -> acc + Atomic.get sh.shard_served)
    0 server.cs_shards

let channel_batches server =
  Array.fold_left
    (fun acc sh -> acc + Atomic.get sh.shard_batches)
    0 server.cs_shards

let channel_steals server =
  Array.fold_left
    (fun acc sh -> acc + Atomic.get sh.shard_steals)
    0 server.cs_shards

let channel_doorbell_stats server =
  Array.fold_left
    (fun (r, w, p) sh ->
      ( r + Doorbell.rings sh.bell,
        w + Doorbell.wakes sh.bell,
        p + Doorbell.parks sh.bell ))
    (0, 0, 0) server.cs_shards

let channel_respawns server = Atomic.get server.cs_respawns
let channel_fail_swept server = Atomic.get server.cs_fail_swept

let shard_heartbeat server ~shard =
  if shard < 0 || shard >= Array.length server.cs_shards then 0
  else Atomic.get server.cs_shards.(shard).heartbeat

let client_slab_grows cl =
  Array.fold_left (fun acc ch -> acc + Ppc_channel.slab_grows ch) 0 cl.cl_chans

let client_timeouts cl =
  Array.fold_left (fun acc ch -> acc + Ppc_channel.timeouts ch) 0 cl.cl_chans

let client_rejected cl =
  Array.fold_left (fun acc ch -> acc + Ppc_channel.rejected ch) 0 cl.cl_chans

let client_slab_reclaimed cl =
  Array.fold_left
    (fun acc ch -> acc + Ppc_channel.slab_reclaimed ch)
    0 cl.cl_chans

(* --- cross-domain calls: the legacy MPSC path -------------------------- *)

(* The original cross-domain embodiment, kept as the benchmark baseline:
   a server domain drains one allocating MPSC queue, every call builds a
   fresh request record with its own mutex/condvar, and ringing the
   server always takes its lock.  The channel path above removes all
   three costs; ablation A5 measures the difference.

   The waiting discipline is hybrid: a short spin (wins when the server
   runs on another core), then a mutex/condvar block (necessary when
   cores are scarce — a pure spin-wait livelocks a single-core box). *)

type request = {
  req_ep : int;
  req_args : int array;
  done_ : bool Atomic.t;
  req_mutex : Mutex.t;
  req_cond : Condition.t;
}

type server_domain = {
  queue : request Mpsc_queue.t;
  stop : bool Atomic.t;
  served : int Atomic.t;
  sd_mutex : Mutex.t;
  sd_cond : Condition.t;  (** signalled on every push and on stop *)
  domain : unit Domain.t;
}

let spawn_server t =
  let queue = Mpsc_queue.create () in
  let stop = Atomic.make false in
  let served = Atomic.make 0 in
  let sd_mutex = Mutex.create () in
  let sd_cond = Condition.create () in
  let domain =
    Domain.spawn (fun () ->
        let rec loop () =
          match Mpsc_queue.pop queue with
          | Some req ->
              (match call t ~ep:req.req_ep req.req_args with
              | (_ : int) -> ()
              | exception No_entry _ -> req.req_args.(rc_slot) <- err_no_entry);
              Atomic.set req.done_ true;
              Mutex.lock req.req_mutex;
              Condition.signal req.req_cond;
              Mutex.unlock req.req_mutex;
              Atomic.incr served;
              loop ()
          | None ->
              if Atomic.get stop then ()
              else begin
                Mutex.lock sd_mutex;
                while Mpsc_queue.is_empty queue && not (Atomic.get stop) do
                  Condition.wait sd_cond sd_mutex
                done;
                Mutex.unlock sd_mutex;
                loop ()
              end
        in
        loop ())
  in
  { queue; stop; served; sd_mutex; sd_cond; domain }

let cross_call sd ~ep args =
  let req =
    {
      req_ep = ep;
      req_args = args;
      done_ = Atomic.make false;
      req_mutex = Mutex.create ();
      req_cond = Condition.create ();
    }
  in
  Mpsc_queue.push sd.queue req;
  Mutex.lock sd.sd_mutex;
  Condition.signal sd.sd_cond;
  Mutex.unlock sd.sd_mutex;
  (* Brief spin for the multi-core fast case... *)
  let spins = ref 0 in
  while (not (Atomic.get req.done_)) && !spins < 256 do
    incr spins;
    Domain.cpu_relax ()
  done;
  (* ...then block. *)
  if not (Atomic.get req.done_) then begin
    Mutex.lock req.req_mutex;
    while not (Atomic.get req.done_) do
      Condition.wait req.req_cond req.req_mutex
    done;
    Mutex.unlock req.req_mutex
  end;
  args.(arg_words - 1)

let shutdown_server sd =
  Atomic.set sd.stop true;
  Mutex.lock sd.sd_mutex;
  Condition.broadcast sd.sd_cond;
  Mutex.unlock sd.sd_mutex;
  Domain.join sd.domain

let served sd = Atomic.get sd.served
