(** The runtime's IPC control plane: the Name Server at well-known entry
    point [Ipc_intf.Wellknown.name_server_ep] (0) and the resource
    manager at [Ipc_intf.Wellknown.resource_manager_ep] (1) — the same
    pair the simulator installs as [Naming.Name_server] and [Ppc.Frank],
    over the shared {!Ipc_intf} vocabulary.

    Both are ordinary entry points, so every stub below can run either
    directly on the caller's domain (default) or cross-domain over the
    channel path by passing [~via:(Fastcall.channel_call client)].
    Stubs return {!Ipc_intf.Errc} codes.

    Authentication is the control plane's own (Section 4.1: servers
    authenticate callers themselves, by program ID).  The ACL is open
    until the first {!grant}; after that, Name-Server writes require
    [Write] and manager operations require [Admin].  The caller's
    principal travels in argument slot 6. *)

type t

val install : Fastcall.t -> t
(** Register the two well-known services.  Entry points 0 and 1 must
    still be free: install the control plane first thing after
    [Fastcall.create], as the simulator does during boot.
    @raise Invalid_argument otherwise. *)

val table : t -> Fastcall.t

type path = ep:int -> int array -> int
(** How a stub reaches the table: [Fastcall.call table] (the default) or
    [Fastcall.channel_call client]. *)

(** {1 Naming (Section 4.5.5)} *)

val publish : ?via:path -> t -> principal:int -> name:string -> ep:int -> int
(** Bind [name] (hashed client-side, {!Ipc_intf.Name_hash}) to [ep].
    [Errc.bad_request] if the name is already bound. *)

val lookup : ?via:path -> t -> name:string -> (int, int) result
val unpublish : ?via:path -> t -> principal:int -> name:string -> int
(** Only the publishing owner may unbind ([Errc.denied] otherwise). *)

val bindings : t -> int

(** {1 Resource management (Section 4.5.6)} *)

val stage : t -> Fastcall.handler -> int
(** Stage a handler for a subsequent [alloc_ep]/[exchange] call; the
    token stands in for "the routine's address in the caller's space". *)

val alloc_ep :
  ?via:path -> t -> principal:int -> Fastcall.handler -> (int, int) result
val soft_kill : ?via:path -> t -> principal:int -> ep:int -> int
val hard_kill : ?via:path -> t -> principal:int -> ep:int -> int
val exchange : ?via:path -> t -> principal:int -> ep:int -> Fastcall.handler -> int
val grow_pool : ?via:path -> t -> principal:int -> ctxs:int -> int
val reclaim : ?via:path -> t -> principal:int -> max_ctxs:int -> (int, int) result

(** {1 Authentication (Section 4.1)} *)

val grant : t -> principal:int -> perms:Ipc_intf.Auth.perm list -> unit
val revoke : t -> principal:int -> unit
val check : t -> principal:int -> perm:Ipc_intf.Auth.perm -> bool
