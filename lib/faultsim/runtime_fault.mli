(** Deterministic fault scenarios for the real-domain runtime — the
    companion of {!Fault}'s simulator plans.  Each named scenario builds
    a live Fastcall table / channel server, injects one fault class
    (raise-in-handler, breaker-trip, kill-shard, stall-reply,
    delay-doorbell, backpressure) through the runtime's own injectors,
    and self-checks the containment contract.  An empty [violations]
    list means the contract held. *)

type report = {
  name : string;
  attempted : int;  (** calls issued *)
  ok_calls : int;  (** calls that returned [Errc.ok] *)
  handler_faults : int;  (** contained handler exceptions (table-wide) *)
  timed_out : int;  (** deadline calls that abandoned their cell *)
  retries : int;  (** calls bounced with [Errc.retry] *)
  breaker_trips : int;
  respawns : int;  (** shard domains the supervisor restarted *)
  reclaimed : int;  (** abandoned cells recycled through the slab *)
  violations : string list;  (** empty = scenario passed *)
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val names : string list
(** Scenario names, runnable by {!run} and the [ppc_sim faults
    --runtime] CLI. *)

val run : string -> report option
(** Run one scenario by name; [None] for an unknown name. *)

val run_all : unit -> report list
