(** Applies a fault plan to a running system: every fault fires as an
    ordinary simulation event at its planned time, and every random
    choice derives from the plan seed, so a plan replays bit-for-bit. *)

type t

val install :
  ?vector_base:int -> Ppc.Engine.t -> storm_ep_id:int -> Fault.plan -> t
(** Schedule the plan's events.  Registers one interrupt vector per CPU
    at [vector_base + cpu] (default 240), wired through [Intr_dispatch]
    to [storm_ep_id], and installs the Frank resource-fault hook.  Call
    once per kernel instance, before [Kernel.run]. *)

val injected : t -> int
(** Plan events applied so far. *)
