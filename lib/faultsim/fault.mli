(** Fault vocabulary and deterministic injection plans. *)

type kind =
  | Pool_exhaust of { cpu : int }
      (** reclaim every parked worker and free CD on [cpu] *)
  | Cd_exhaust of { cpu : int }
      (** free every pooled CD on [cpu], keeping the workers *)
  | Worker_kill of { cpu : int }
      (** kill a worker with a call in progress (abort/reclaim path) *)
  | Cache_flush of { cpu : int }
      (** flush [cpu]'s data cache, instruction cache and user TLB *)
  | Intr_storm of { cpu : int; count : int; gap_us : int }
      (** [count] device interrupts, [gap_us] apart, each an async PPC *)
  | Frank_delay of { cpu : int; extra : int; count : int }
      (** next [count] slow-path creations cost [extra] extra instructions *)
  | Frank_fail of { cpu : int; count : int }
      (** next [count] slow-path creations fail with ERR_NO_RESOURCES *)
  | Ready_perturb of { cpu : int }
      (** seeded rotation of [cpu]'s normal-band ready queue *)
  | Foreign_cd_leak of { src : int; dst : int }
      (** deliberately planted bug (not survivable): a CD moved into
          another processor's pool, to validate the checker *)

type event = { at_us : int; kind : kind }
type plan = { seed : int; events : event list }

val no_faults : plan

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit
val pp_plan : Format.formatter -> plan -> unit

(** Named plans, parameterized by CPU count. *)

val pool_exhaust : cpus:int -> plan
val worker_kill : cpus:int -> plan
val cache_storm : cpus:int -> plan
val intr_storm : cpus:int -> plan
val frank_stress : cpus:int -> plan
val perturb : cpus:int -> plan
val chaos : cpus:int -> plan
val leak : cpus:int -> plan

val of_name : string -> cpus:int -> plan option
val names : string list
