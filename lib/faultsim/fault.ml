(* Fault vocabulary and injection plans.

   A plan is a seed plus a list of timed fault events; everything
   downstream (the injector's random choices, interrupt storms, queue
   perturbations) derives from the seed through [Sim.Rng], so a plan
   replays bit-for-bit.

   [Foreign_cd_leak] is not a fault the system is expected to survive —
   it is a deliberately planted bug (a CD pushed into another processor's
   pool) used to prove the invariant checker actually catches ownership
   and conservation violations. *)

type kind =
  | Pool_exhaust of { cpu : int }
      (** reclaim every parked worker and free CD on [cpu] (pools to
          zero): the next call pays Frank's slow path for both *)
  | Cd_exhaust of { cpu : int }
      (** free every pooled CD on [cpu], keeping the workers *)
  | Worker_kill of { cpu : int }
      (** kill a worker with a call in progress on [cpu], forcing the
          abort/reclaim path *)
  | Cache_flush of { cpu : int }
      (** flush [cpu]'s data cache, instruction cache and user TLB *)
  | Intr_storm of { cpu : int; count : int; gap_us : int }
      (** [count] device interrupts on [cpu], [gap_us] apart, each
          injecting an asynchronous PPC to the device server *)
  | Frank_delay of { cpu : int; extra : int; count : int }
      (** the next [count] Frank slow-path creations on [cpu] each cost
          [extra] additional kernel-text instructions (congested resource
          manager) *)
  | Frank_fail of { cpu : int; count : int }
      (** the next [count] Frank slow-path creations on [cpu] fail: the
          calls are rejected with ERR_NO_RESOURCES *)
  | Ready_perturb of { cpu : int }
      (** reorder [cpu]'s normal-band ready queue (seeded rotation) *)
  | Foreign_cd_leak of { src : int; dst : int }
      (** deliberate bug: move a free CD from [src]'s pool into [dst]'s
          pool, violating per-CPU ownership *)

type event = { at_us : int; kind : kind }

type plan = { seed : int; events : event list }

let no_faults = { seed = 0; events = [] }

let pp_kind ppf = function
  | Pool_exhaust { cpu } -> Fmt.pf ppf "pool-exhaust cpu%d" cpu
  | Cd_exhaust { cpu } -> Fmt.pf ppf "cd-exhaust cpu%d" cpu
  | Worker_kill { cpu } -> Fmt.pf ppf "worker-kill cpu%d" cpu
  | Cache_flush { cpu } -> Fmt.pf ppf "cache-flush cpu%d" cpu
  | Intr_storm { cpu; count; gap_us } ->
      Fmt.pf ppf "intr-storm cpu%d x%d @%dus" cpu count gap_us
  | Frank_delay { cpu; extra; count } ->
      Fmt.pf ppf "frank-delay cpu%d +%d x%d" cpu extra count
  | Frank_fail { cpu; count } -> Fmt.pf ppf "frank-fail cpu%d x%d" cpu count
  | Ready_perturb { cpu } -> Fmt.pf ppf "ready-perturb cpu%d" cpu
  | Foreign_cd_leak { src; dst } ->
      Fmt.pf ppf "foreign-cd-leak cpu%d->cpu%d" src dst

let pp_event ppf e = Fmt.pf ppf "@%4dus %a" e.at_us pp_kind e.kind

let pp_plan ppf p =
  Fmt.pf ppf "plan(seed=%d)@[<v 2>%a@]" p.seed
    Fmt.(list ~sep:(any "@,") (fun ppf e -> Fmt.pf ppf "  %a" pp_event e))
    p.events

(* --- named plans -------------------------------------------------------- *)

let spread ~cpus ~start_us ~gap_us mk n =
  List.init n (fun i ->
      { at_us = start_us + (i * gap_us); kind = mk (i mod cpus) })

let pool_exhaust ~cpus =
  {
    seed = 11;
    events = spread ~cpus ~start_us:40 ~gap_us:60 (fun cpu -> Pool_exhaust { cpu }) (3 * cpus);
  }

let worker_kill ~cpus =
  {
    seed = 22;
    events = spread ~cpus ~start_us:25 ~gap_us:35 (fun cpu -> Worker_kill { cpu }) (4 * cpus);
  }

let cache_storm ~cpus =
  {
    seed = 33;
    events = spread ~cpus ~start_us:30 ~gap_us:20 (fun cpu -> Cache_flush { cpu }) (6 * cpus);
  }

let intr_storm ~cpus =
  {
    seed = 44;
    events =
      spread ~cpus ~start_us:50 ~gap_us:100
        (fun cpu -> Intr_storm { cpu; count = 6; gap_us = 4 })
        (2 * cpus);
  }

let frank_stress ~cpus =
  {
    seed = 55;
    events =
      spread ~cpus ~start_us:20 ~gap_us:50
        (fun cpu -> Pool_exhaust { cpu })
        (2 * cpus)
      @ spread ~cpus ~start_us:30 ~gap_us:50
          (fun cpu -> Frank_delay { cpu; extra = 400; count = 2 })
          cpus
      @ spread ~cpus ~start_us:80 ~gap_us:50
          (fun cpu -> Frank_fail { cpu; count = 1 })
          cpus;
  }

let perturb ~cpus =
  {
    seed = 66;
    events =
      spread ~cpus ~start_us:15 ~gap_us:25 (fun cpu -> Ready_perturb { cpu }) (6 * cpus);
  }

let chaos ~cpus =
  let mix i cpu =
    match i mod 6 with
    | 0 -> Pool_exhaust { cpu }
    | 1 -> Worker_kill { cpu }
    | 2 -> Cache_flush { cpu }
    | 3 -> Intr_storm { cpu; count = 4; gap_us = 3 }
    | 4 -> Frank_delay { cpu; extra = 250; count = 2 }
    | _ -> Ready_perturb { cpu }
  in
  {
    seed = 77;
    events =
      List.init (8 * cpus) (fun i ->
          { at_us = 20 + (i * 30); kind = mix i (i mod cpus) });
  }

let leak ~cpus =
  let dst = if cpus > 1 then 1 else 0 in
  { seed = 88; events = [ { at_us = 120; kind = Foreign_cd_leak { src = 0; dst } } ] }

let named =
  [
    ("baseline", fun ~cpus:_ -> no_faults);
    ("pool-exhaust", pool_exhaust);
    ("worker-kill", worker_kill);
    ("cache-storm", cache_storm);
    ("intr-storm", intr_storm);
    ("frank-stress", frank_stress);
    ("perturb", perturb);
    ("chaos", chaos);
    ("leak", leak);
  ]

let of_name name ~cpus =
  match List.assoc_opt name named with
  | Some f -> Some (f ~cpus)
  | None -> None

let names = List.map fst named
