(** A self-contained multi-CPU client/server workload with the
    invariant checker attached and a fault plan installed.  Fully
    deterministic: same plan, same report. *)

type report = {
  plan : Fault.plan;
  calls_attempted : int;
  calls_ok : int;
  calls_killed : int;  (** rc = err_killed seen by clients *)
  calls_rejected : int;  (** rc = err_no_resources seen by clients *)
  aborted_calls : int;
  rejected_calls : int;
  resource_failures : int;
  handler_faults : int;
  frank_worker_creations : int;
  frank_cd_creations : int;
  injected : int;
  checks : int;
  sim_events : int;
  final_us : float;
  violations : Invariant.violation list;
  trace_tail : string list;  (** last trace events, kept on violation *)
}

val run :
  ?cpus:int ->
  ?clients_per_cpu:int ->
  ?calls_per_client:int ->
  ?trace_capacity:int ->
  Fault.plan ->
  report

val digest : report -> string
(** Condensed stable rendering; two runs of the same plan must be
    byte-identical. *)

val pp_report : Format.formatter -> report -> unit
val ok : report -> bool
