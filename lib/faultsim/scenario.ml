(* QCheck scenario generation for fault plans.

   Plans are generated through an integer encoding — (seed, [(at_us,
   (tag, a, b, c))]) — and mapped to [Fault.plan] with [QCheck.map ~rev],
   so QCheck's built-in integer/list shrinkers apply: a failing scenario
   shrinks by dropping events and shrinking times/parameters toward
   zero.  [arbitrary] draws only faults the system must survive;
   [arbitrary_with_leak] appends the planted [Foreign_cd_leak] bug, for
   proving the checker catches it and that shrinking isolates it.

   [shrink_to_minimal] is a deterministic greedy event-list minimizer
   used where we want the minimal reproducing plan itself (acceptance
   test, CLI), independent of QCheck's internal iteration budget. *)

type code = int * (int * (int * int * int * int)) list

let kind_of_code ~cpus ~with_leak (tag, a, b, c) =
  let n_kinds = if with_leak && cpus > 1 then 9 else 8 in
  let cpu = a mod cpus in
  match tag mod n_kinds with
  | 0 -> Fault.Pool_exhaust { cpu }
  | 1 -> Cd_exhaust { cpu }
  | 2 -> Worker_kill { cpu }
  | 3 -> Cache_flush { cpu }
  | 4 -> Intr_storm { cpu; count = 1 + (b mod 6); gap_us = 1 + (c mod 8) }
  | 5 -> Frank_delay { cpu; extra = 50 + (b mod 400); count = 1 + (c mod 3) }
  | 6 -> Frank_fail { cpu; count = 1 + (b mod 3) }
  | 7 -> Ready_perturb { cpu }
  | _ ->
      Foreign_cd_leak { src = cpu; dst = (cpu + 1 + (b mod (cpus - 1))) mod cpus }

let code_of_kind ~cpus = function
  | Fault.Pool_exhaust { cpu } -> (0, cpu, 0, 0)
  | Cd_exhaust { cpu } -> (1, cpu, 0, 0)
  | Worker_kill { cpu } -> (2, cpu, 0, 0)
  | Cache_flush { cpu } -> (3, cpu, 0, 0)
  | Intr_storm { cpu; count; gap_us } -> (4, cpu, count - 1, gap_us - 1)
  | Frank_delay { cpu; extra; count } -> (5, cpu, extra - 50, count - 1)
  | Frank_fail { cpu; count } -> (6, cpu, count - 1, 0)
  | Ready_perturb { cpu } -> (7, cpu, 0, 0)
  | Foreign_cd_leak { src; dst } ->
      let k = (((dst - src - 1) mod cpus) + cpus) mod cpus in
      (8, src, k, 0)

let plan_of_code ~cpus ~with_leak ((seed, evs) : code) =
  {
    Fault.seed;
    events =
      List.map
        (fun (at_us, q) ->
          { Fault.at_us; kind = kind_of_code ~cpus ~with_leak q })
        evs;
  }

let code_of_plan ~cpus (p : Fault.plan) : code =
  ( p.Fault.seed,
    List.map
      (fun { Fault.at_us; kind } -> (at_us, code_of_kind ~cpus kind))
      p.Fault.events )

let code_arb ~max_us =
  QCheck.(
    pair small_nat
      (small_list
         (pair (int_bound max_us)
            (quad (int_bound 1000) (int_bound 1000) (int_bound 1000)
               (int_bound 1000)))))

let print_plan p = Fmt.str "%a" Fault.pp_plan p

let arbitrary ?(max_us = 400) ~cpus () =
  QCheck.set_print print_plan
    (QCheck.map
       ~rev:(code_of_plan ~cpus)
       (plan_of_code ~cpus ~with_leak:false)
       (code_arb ~max_us))

let arbitrary_with_leak ?(max_us = 400) ~cpus () =
  if cpus < 2 then invalid_arg "Scenario.arbitrary_with_leak: needs >= 2 cpus";
  QCheck.set_print print_plan
    (QCheck.map
       ~rev:(code_of_plan ~cpus)
       (plan_of_code ~cpus ~with_leak:true)
       (code_arb ~max_us))

(* Greedy deterministic minimizer: repeatedly drop events while the plan
   still fails the predicate.  O(n^2) runs of [still_fails], intended for
   the small plans QCheck produces. *)
let shrink_to_minimal still_fails (plan : Fault.plan) =
  let rec drop_pass (p : Fault.plan) =
    let n = List.length p.Fault.events in
    let rec try_drop i =
      if i >= n then None
      else
        let events = List.filteri (fun j _ -> j <> i) p.Fault.events in
        let cand = { p with Fault.events } in
        if still_fails cand then Some cand else try_drop (i + 1)
    in
    match try_drop 0 with Some p' -> drop_pass p' | None -> p
  in
  drop_pass plan
