(** The kernel invariant checker: consumes the PPC engine's probe
    events and re-checks global state after every simulation event.

    Checked continuously: fast-path lock-freedom, hand-off scheduling
    discipline (the dispatcher never runs inside the hand-off window),
    per-CPU pool ownership (no foreign CDs, no retired or foreign
    workers in pools), and conservation of CDs, workers and spare stack
    pages — including across aborted calls and reclaim.  Counters are
    baselined at attach time. *)

type t

type violation = { at_us : float; event_no : int; what : string }

val pp_violation : Format.formatter -> violation -> unit

val attach : ?max_violations:int -> Ppc.Engine.t -> t
(** Install the probe and a sim-engine step hook.  Attach after
    pre-population (priming) so baselines include it. *)

val detach : t -> unit
(** Remove the probe and clear the sim engine's step hooks. *)

val violations : t -> violation list
(** Distinct violations, oldest first (deduplicated by kind and CPU). *)

val ok : t -> bool
val checks : t -> int
(** Number of post-event state checks performed. *)
