(* Process-level chaos for the cross-process shm transport: the
   PR 8 double-entry discipline pointed at whole-process death.

   One parent (this function — it must be single-domain: it forks, and
   forking a multi-domain OCaml runtime wedges the child's GC) drives:

     - a supervised server child (Runtime.Proc_supervisor): attaches
       the segment, serves sessions, is respawned over a regenerated
       segment when killed;
     - a client child: a Runtime.Shm_session issuing open-loop paced
       calls (seeded exponential inter-arrivals from lib/workload) to
       an Add2 entry point it binds by name, recovering from whatever
       the scheduler does to its peer;
     - a seed-scheduled event plan: at thresholds on call progress,
       SIGKILL the server (the supervisor must respawn it and the
       client must reattach) or the client (the server must sweep its
       cells and release the session, and the parent forks a
       successor that picks up the remaining call budget).

   Every count that crosses a kill lives in a separate mmap'd *ledger*
   segment that is never regenerated, written with fetch-adds, so it
   survives any child's death.  A call is claimed by fetch-adding the
   ledger's started counter and resolved by fetch-adding exactly one
   verdict counter; the parent snapshots the ledger immediately after
   reaping a killed client, when nothing can move it, so the calls
   that died unresolved with that client are known exactly.  At
   quiesce the books must balance to zero slack:

     started            = the call budget (claims balanced)
     started - resolved = calls lost to client kills (each surviving
                          call got exactly one verdict)
     respawns           = injected server kills
     session releases   = injected client kills
     client reattaches  = injected server kills
     leaked slab cells  = 0 (every cell state_free, submit ring dry)

   plus: zero verdicts outside {ok, handler_fault, retry}, zero
   handler faults at all (Add2 cannot raise — a fault here is a
   containment code leaking through recovery), correct arithmetic in
   every ok reply, clean exits for the final client and the server.

   The whole schedule — thresholds, victims, pacing — is a pure
   function of the seed; wall-clock only decides interleavings, which
   is exactly what the invariants are meant to survive. *)

module W = Ipc_intf.Wire_abi
module Errc = Ipc_intf.Errc
module Segment = Runtime.Segment
module Ch = Runtime.Shm_channel
module Session = Runtime.Shm_session
module Sup = Runtime.Proc_supervisor

(* --- the ledger ------------------------------------------------------------ *)

let l_started = 0 (* claimed call slots (client fetch-add) *)
let l_ok = 1 (* verdict: reply, arithmetic checked *)
let l_faults = 2 (* verdict: handler_fault surfaced *)
let l_gave_up = 3 (* verdict: Errc.retry after exhausted recovery budget *)
let l_other = 4 (* verdict: anything else, or a wrong ok result *)
let l_reattaches = 5 (* successful session reattaches (server deaths healed) *)
let l_releases = 6 (* sessions the server released (client deaths healed) *)
let l_done = 7 (* the call budget drained and the client shut down cleanly *)
let ledger_words = 16

let probe_window_ns = 15_000_000
(* Tight enough that a death is detected (and CI doesn't crawl), loose
   enough that a descheduled-but-alive peer costs only a wasted pid
   probe — the probe cannot false-positive on a live pid. *)

(* --- the two children ------------------------------------------------------ *)

let server_main ~seg_path ~ledger_path () =
  let ledger =
    Segment.map_file ~path:ledger_path ~words:ledger_words ~create:false ()
  in
  let srv = Ch.attach_file ~probe_window_ns ~role:Ch.Server seg_path in
  let fast = Runtime.Fastcall.create () in
  let ctl = Runtime.Control.install fast in
  let dispatch = Ch.fastcall_dispatch fast ctl in
  ignore
    (Ch.serve_sessions srv ~dispatch ~on_release:(fun () ->
         ignore (Segment.fetch_add ledger l_releases 1 : int))
      : int);
  0

let client_main ~seed ~incarnation ~calls ~pace_us ~seg_path ~ledger_path () =
  let ledger =
    Segment.map_file ~path:ledger_path ~words:ledger_words ~create:false ()
  in
  (* Each incarnation paces from its own split of the seed; the claim
     counter, not the rng, decides which calls it issues. *)
  let rng = Sim.Rng.create ~seed:(seed + (incarnation * 0x9E3779B9)) in
  let sampler = Workload.Sampler.Exponential { mean = pace_us } in
  let sess =
    Session.connect ~probe_window_ns ~path:seg_path
      ~on_reattach:(fun () ->
        ignore (Segment.fetch_add ledger l_reattaches 1 : int))
      ()
  in
  let b = Session.bind sess ~name:"chaos/adder" ~spec:Ipc_intf.Sigs.Add2 in
  let args = Array.make 8 0 in
  let next_at = ref (Runtime.Doorbell.now_ns ()) in
  let continue_ = ref true in
  while !continue_ do
    let i = Segment.fetch_add ledger l_started 1 in
    if i >= calls then begin
      (* Overshot the budget: give the claim back and finish. *)
      ignore (Segment.fetch_add ledger l_started (-1) : int);
      continue_ := false
    end
    else begin
      (* Open-loop arrivals: the schedule advances by the drawn
         inter-arrival whether or not the previous call is late, so a
         recovery stall is answered with a dispatch burst, not a
         quietly slowed load. *)
      next_at :=
        !next_at + int_of_float (Workload.Sampler.draw sampler rng *. 1_000.);
      let now = Runtime.Doorbell.now_ns () in
      if !next_at > now then Runtime.Doorbell.nap_ns (!next_at - now);
      Array.fill args 0 (Array.length args) 0;
      args.(0) <- i;
      args.(1) <- i + 1;
      let rc = Session.call sess b args in
      let verdict =
        if rc = Errc.ok then
          if args.(0) = (2 * i) + 1 then l_ok else l_other
        else if rc = Errc.handler_fault then l_faults
        else if rc = Errc.retry then l_gave_up
        else l_other
      in
      ignore (Segment.fetch_add ledger verdict 1 : int)
    end
  done;
  (* Order matters: the done flag first, so the parent disarms the
     supervisor before the shutdown announcement can let the server
     exit (an armed check would respawn a cleanly-exiting server and
     unbalance the respawn ledger). *)
  Segment.set ledger l_done 1;
  Session.close sess;
  0

(* --- the report ------------------------------------------------------------ *)

type report = {
  seed : int;
  calls : int;
  events : int;
  injected_server_kills : int;
  injected_client_kills : int;
  respawns : int;
  releases : int;
  reattaches : int;
  started : int;
  ok_calls : int;
  handler_faults : int;
  gave_up : int;
  other_rc : int;
  lost : int;  (** calls that died unresolved with a killed client *)
  leaked_cells : int;
  violations : string list;
}

let ok r = r.violations = []

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>chaos seed %d: %d calls, %d events (%d server kills, %d client \
     kills)@,\
     respawns %d  releases %d  reattaches %d@,\
     started %d = ok %d + faults %d + gave-up %d + other %d + lost %d@,\
     leaked cells %d@,\
     %s@]"
    r.seed r.calls r.events r.injected_server_kills r.injected_client_kills
    r.respawns r.releases r.reattaches r.started r.ok_calls r.handler_faults
    r.gave_up r.other_rc r.lost r.leaked_cells
    (if ok r then "PASS"
     else "FAIL:\n  " ^ String.concat "\n  " r.violations)

(* The per-seed verdict-reconciliation artifact CI uploads on failure. *)
let to_markdown r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "## chaos seed %d — %s" r.seed (if ok r then "PASS" else "FAIL");
  line "";
  line "| ledger entry | injected / claimed | observed |";
  line "|---|---:|---:|";
  line "| server kills vs supervisor respawns | %d | %d |"
    r.injected_server_kills r.respawns;
  line "| server kills vs client reattaches | %d | %d |"
    r.injected_server_kills r.reattaches;
  line "| client kills vs session releases | %d | %d |"
    r.injected_client_kills r.releases;
  line "| call budget vs claims | %d | %d |" r.calls r.started;
  line "| claims vs verdicts+lost | %d | %d |" r.started
    (r.ok_calls + r.handler_faults + r.gave_up + r.other_rc + r.lost);
  line "";
  line "| verdict | count |";
  line "|---|---:|";
  line "| ok (arithmetic checked) | %d |" r.ok_calls;
  line "| handler_fault | %d |" r.handler_faults;
  line "| retry (budget exhausted) | %d |" r.gave_up;
  line "| outside the verdict set | %d |" r.other_rc;
  line "| lost with a killed client | %d |" r.lost;
  line "| leaked slab cells at quiesce | %d |" r.leaked_cells;
  if not (ok r) then begin
    line "";
    line "violations:";
    List.iter (fun v -> line "- %s" v) r.violations
  end;
  Buffer.contents b

(* --- the parent ------------------------------------------------------------ *)

let status_str = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s

(* Poll for [cond], running [drive] (the supervisor check — which is
   also the reaper) between polls.  False on timeout: every wait in the
   harness is bounded, so a wedged run reports instead of hanging CI. *)
let wait_until ~timeout_ns ~drive cond =
  let deadline = Runtime.Doorbell.now_ns () + timeout_ns in
  let rec go () =
    if cond () then true
    else if Runtime.Doorbell.now_ns () > deadline then false
    else begin
      drive ();
      Runtime.Doorbell.nap_ns 1_000_000;
      go ()
    end
  in
  go ()

let run ?(calls = 4_000) ?(events = 6) ?(pace_us = 60.) ~seed () =
  let seg_path = Filename.temp_file "ppc_chaos_seg" ".bin" in
  let ledger_path = Filename.temp_file "ppc_chaos_ledger" ".bin" in
  let ledger =
    Segment.map_file ~path:ledger_path ~words:ledger_words ~create:true ()
  in
  for i = 0 to ledger_words - 1 do
    Segment.set ledger i 0
  done;
  let sup =
    Sup.start ~path:seg_path ~capacity:32 ~arg_words:8
      ~server:(server_main ~seg_path ~ledger_path)
      ()
  in
  (* The event plan is a pure function of the seed: thresholds on the
     claim counter in [15%, 85%] of the budget (so recovery always has
     load left to prove itself on), victim drawn per event. *)
  let rng = Sim.Rng.create ~seed in
  let plan =
    List.sort compare
      (List.init events (fun _ ->
           let frac = 0.15 +. Sim.Rng.float rng 0.70 in
           let victim = if Sim.Rng.bool rng then `Server else `Client in
           (int_of_float (frac *. float_of_int calls), victim)))
  in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := !violations @ [ s ]) fmt
  in
  let client_pid = ref 0 in
  let incarnation = ref 0 in
  let fork_client () =
    incr incarnation;
    let inc = !incarnation in
    match Unix.fork () with
    | 0 ->
        let code =
          try client_main ~seed ~incarnation:inc ~calls ~pace_us ~seg_path
                ~ledger_path ()
          with _ -> 120
        in
        Unix._exit code
    | pid -> client_pid := pid
  in
  fork_client ();
  let drive () = ignore (Sup.check sup : Sup.status) in
  let get o = Segment.get ledger o in
  let resolved () = get l_ok + get l_faults + get l_gave_up + get l_other in
  let injected_server = ref 0 in
  let injected_client = ref 0 in
  let lost = ref 0 in
  let step_timeout_ns = 20_000_000_000 in
  List.iter
    (fun (threshold, victim) ->
      (* A plan entry is skipped (not counted as injected) only when
         the load finished before its threshold — possible under an
         extreme scheduler, never silent: the report carries the
         realized injection counts. *)
      if get l_done = 0 then begin
        if
          not
            (wait_until ~timeout_ns:step_timeout_ns ~drive (fun () ->
                 get l_started >= threshold || get l_done = 1))
        then violate "event at %d: load never reached the threshold" threshold
        else if get l_done = 0 then begin
          match victim with
          | `Server ->
              let before_respawns = Sup.respawns sup in
              let before_reatt = get l_reattaches in
              Sup.kill9 sup;
              incr injected_server;
              if
                not
                  (wait_until ~timeout_ns:step_timeout_ns ~drive (fun () ->
                       Sup.respawns sup > before_respawns))
              then violate "server kill at %d: no respawn" threshold
              else if
                not
                  (wait_until ~timeout_ns:step_timeout_ns ~drive (fun () ->
                       get l_reattaches > before_reatt || get l_done = 1))
              then violate "server kill at %d: client never reattached" threshold
          | `Client ->
              let pid = !client_pid in
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              (* Reap before reading the ledger: frozen now, and the
                 server's pid probe cannot see the death while the
                 child is an unreaped zombie. *)
              (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
               with Unix.Unix_error _ -> ());
              incr injected_client;
              (* The unresolved gap at this frozen instant is every call
                 lost so far (earlier kills included — dead claims never
                 resolve), so this snapshot is already cumulative. *)
              lost := get l_started - resolved ();
              if
                not
                  (wait_until ~timeout_ns:step_timeout_ns ~drive (fun () ->
                       get l_releases >= !injected_client))
              then
                violate "client kill at %d: session never released" threshold;
              fork_client ()
        end
      end)
    plan;
  (* Drain the rest of the budget.  No more kills are scheduled, so
     disarm: any server death past this point is a bug to report, not
     an event to heal. *)
  Sup.disarm sup;
  let server_exit = ref None in
  let drive_tail () =
    match Sup.check sup with
    | Sup.Exited st -> if !server_exit = None then server_exit := Some st
    | Sup.Running | Sup.Respawned -> ()
  in
  if
    not
      (wait_until ~timeout_ns:60_000_000_000 ~drive:drive_tail (fun () ->
           get l_done = 1))
  then begin
    violate "the final client never reached clean shutdown";
    (try Unix.kill !client_pid Sys.sigkill with Unix.Unix_error _ -> ())
  end;
  (match Unix.waitpid [] !client_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, st -> violate "final client: %s (want exit 0)" (status_str st)
  | exception Unix.Unix_error _ -> violate "final client unreapable");
  (match
     match !server_exit with
     | Some st -> Some st
     | None -> Sup.wait_exit ~timeout_ns:10_000_000_000 sup
   with
  | Some (Unix.WEXITED 0) -> ()
  | Some st -> violate "server: %s (want exit 0)" (status_str st)
  | None ->
      violate "server never exited after the shutdown announcement";
      Sup.kill9 sup;
      ignore (Sup.wait_exit ~timeout_ns:2_000_000_000 sup
               : Unix.process_status option));
  (* Quiesce: remap the segment fresh and audit the slab. *)
  let leaked =
    let hdr =
      Segment.map_file ~path:seg_path ~words:W.header_words ~create:false ()
    in
    let words = Segment.get hdr W.off_total_words in
    let seg = Segment.map_file ~path:seg_path ~words ~create:false () in
    let capacity = Segment.get seg W.off_capacity in
    let arg_words = Segment.get seg W.off_arg_words in
    let n = ref 0 in
    for i = 0 to capacity - 1 do
      if Segment.get seg (W.cell_state ~capacity ~arg_words i) <> W.state_free
      then incr n
    done;
    if Segment.get seg W.submit_head <> Segment.get seg W.submit_tail then
      violate "submission ring not drained at quiesce";
    !n
  in
  (* The double entry. *)
  let started = get l_started in
  let okc = get l_ok in
  let faults = get l_faults in
  let gave = get l_gave_up in
  let other = get l_other in
  let resolved = okc + faults + gave + other in
  if started <> calls then
    violate "claim imbalance: %d claimed, budget %d" started calls;
  if started - resolved <> !lost then
    violate "verdict imbalance: %d claimed, %d resolved, %d known lost"
      started resolved !lost;
  if other <> 0 then
    violate "%d verdicts outside the set (or wrong ok results)" other;
  if faults <> 0 then
    violate "%d handler faults from a handler that cannot raise" faults;
  if leaked <> 0 then violate "%d slab cells leaked at quiesce" leaked;
  if Sup.respawns sup <> !injected_server then
    violate "respawns %d, injected server kills %d" (Sup.respawns sup)
      !injected_server;
  if get l_releases <> !injected_client then
    violate "session releases %d, injected client kills %d" (get l_releases)
      !injected_client;
  if get l_reattaches <> !injected_server then
    violate "client reattaches %d, injected server kills %d"
      (get l_reattaches) !injected_server;
  if get l_done = 0 then violate "the done flag never rose";
  (try Unix.unlink seg_path with Unix.Unix_error _ -> ());
  (try Unix.unlink ledger_path with Unix.Unix_error _ -> ());
  {
    seed;
    calls;
    events;
    injected_server_kills = !injected_server;
    injected_client_kills = !injected_client;
    respawns = Sup.respawns sup;
    releases = get l_releases;
    reattaches = get l_reattaches;
    started;
    ok_calls = okc;
    handler_faults = faults;
    gave_up = gave;
    other_rc = other;
    lost = !lost;
    leaked_cells = leaked;
    violations = !violations;
  }
