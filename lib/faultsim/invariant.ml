(* The kernel invariant checker.

   Attached to a PPC engine, it consumes the engine's probe events and
   re-checks global state after every simulation event (via the sim
   engine's step hooks).  The invariants are the paper's structural
   claims, which must hold not just on the happy path but under every
   fault the injector can throw:

   - lock-freedom of the fast path: no spinlock or rw-spinlock is
     acquired between fast-path entry and exit (the window is synchronous
     within one simulation event, so global acquisition odometers are a
     sound check);
   - hand-off discipline: between the hand-off probe and the worker
     starting to serve, the CPU's dispatcher never runs (the transfer
     bypasses the ready queue);
   - per-CPU pool ownership: CDs are popped/pushed only by their home
     processor, and no pool ever contains a foreign CD or a retired
     worker;
   - conservation: CDs, workers and spare stack frames are neither leaked
     nor invented, including across aborted calls and reclaim.

   Event counters are baselined at attach time, so pre-existing state
   (initial CDs, primed workers) is accounted for. *)

type violation = { at_us : float; event_no : int; what : string }

let pp_violation ppf v =
  Fmt.pf ppf "[%8.2fus #%d] %s" v.at_us v.event_no v.what

type t = {
  ppc : Ppc.Engine.t;
  kernel : Kernel.t;
  cpus : int;
  (* fast-path lock-freedom: (spin, rw) odometers at Fastpath_enter *)
  fp_window : (int * int) option array;
  (* hand-off discipline: dispatch count at Handoff_to_worker *)
  handoff_window : int option array;
  (* CD accounting, per home CPU (events since attach) *)
  cd_created : int array;
  cd_trimmed : int array;
  cd_dropped : int array;
  cd_live_out : int array;  (** allocs - releases - drops *)
  cd_baseline : int array;  (** pool sums at attach *)
  (* spare stack frames, per CPU *)
  spares_expected : int array;
  (* workers, per CPU *)
  w_created : int array;
  w_retired : int array;
  w_baseline : int array;  (** pooled + active at attach *)
  seen : (string, unit) Hashtbl.t;  (** violation dedup keys *)
  mutable checks : int;
  mutable violations : violation list;  (** newest first *)
  max_violations : int;
}

let sim t = Kernel.engine t.kernel

let record ?key t what =
  let key = match key with Some k -> k | None -> what in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    if List.length t.violations < t.max_violations then
      t.violations <-
        {
          at_us = Sim.Time.to_us (Sim.Engine.now (sim t));
          event_no = Sim.Engine.executed_events (sim t);
          what;
        }
        :: t.violations
  end

let lock_odometers () =
  (Kernel.Spinlock.total_acquisitions (), Kernel.Rw_spinlock.total_acquisitions ())

(* Pooled workers on a CPU, summed over all live entry points. *)
let pooled_workers t cpu =
  List.fold_left
    (fun acc ep ->
      acc + List.length (Ppc.Entry_point.per_cpu ep cpu).Ppc.Entry_point.pool)
    0
    (Ppc.Engine.entry_points t.ppc)

let active_unretired t cpu =
  List.length
    (List.filter
       (fun (_, w) ->
         Ppc.Worker.cpu_index w = cpu && not (Ppc.Worker.retired w))
       (Ppc.Engine.active_all t.ppc))

(* --- probe-event side -------------------------------------------------- *)

let on_event t (ev : Ppc.Engine.probe_event) =
  match ev with
  | Fastpath_enter { cpu; _ } -> t.fp_window.(cpu) <- Some (lock_odometers ())
  | Fastpath_exit { cpu; ep_id } ->
      (match t.fp_window.(cpu) with
      | None ->
          record t
            ~key:(Printf.sprintf "fp-unbalanced/%d" cpu)
            (Printf.sprintf "cpu%d: fast-path exit without enter (ep%d)" cpu
               ep_id)
      | Some (s0, r0) ->
          let s1, r1 = lock_odometers () in
          if s1 <> s0 || r1 <> r0 then
            record t
              ~key:(Printf.sprintf "fp-lock/%d" cpu)
              (Printf.sprintf
                 "cpu%d: lock acquired on the PPC fast path (ep%d): spin \
                  %d->%d, rw %d->%d"
                 cpu ep_id s0 s1 r0 r1));
      t.fp_window.(cpu) <- None
  | Worker_pop _ | Worker_park _ -> ()
  | Worker_created { cpu; _ } -> t.w_created.(cpu) <- t.w_created.(cpu) + 1
  | Worker_retired { cpu; _ } -> t.w_retired.(cpu) <- t.w_retired.(cpu) + 1
  | Cd_created { home } -> t.cd_created.(home) <- t.cd_created.(home) + 1
  | Cd_alloc { cpu; home } ->
      if cpu <> home then
        record t
          ~key:(Printf.sprintf "cd-own-alloc/%d" cpu)
          (Printf.sprintf "cpu%d popped a CD homed on cpu%d" cpu home);
      t.cd_live_out.(home) <- t.cd_live_out.(home) + 1
  | Cd_release { cpu; home } ->
      if cpu <> home then
        record t
          ~key:(Printf.sprintf "cd-own-release/%d" cpu)
          (Printf.sprintf "cpu%d pushed a CD homed on cpu%d" cpu home);
      t.cd_live_out.(home) <- t.cd_live_out.(home) - 1
  | Cd_dropped { cpu; home } ->
      t.cd_dropped.(home) <- t.cd_dropped.(home) + 1;
      t.cd_live_out.(home) <- t.cd_live_out.(home) - 1;
      t.spares_expected.(cpu) <- t.spares_expected.(cpu) + 1
  | Cd_trimmed { cpu; home } ->
      t.cd_trimmed.(home) <- t.cd_trimmed.(home) + 1;
      t.spares_expected.(cpu) <- t.spares_expected.(cpu) + 1
  | Frame_taken { cpu; fresh } ->
      if not fresh then t.spares_expected.(cpu) <- t.spares_expected.(cpu) - 1
  | Frame_returned { cpu } ->
      t.spares_expected.(cpu) <- t.spares_expected.(cpu) + 1
  | Handoff_to_worker { cpu; _ } ->
      t.handoff_window.(cpu) <-
        Some (Kernel.Kcpu.dispatches (Kernel.kcpu t.kernel cpu))
  | Serve_begin { cpu; ep_id } ->
      (match t.handoff_window.(cpu) with
      | None -> ()
      | Some d0 ->
          let d1 = Kernel.Kcpu.dispatches (Kernel.kcpu t.kernel cpu) in
          if d1 <> d0 then
            record t
              ~key:(Printf.sprintf "handoff/%d" cpu)
              (Printf.sprintf
                 "cpu%d: dispatcher ran inside a hand-off to ep%d \
                  (dispatches %d->%d): ready queue not bypassed"
                 cpu ep_id d0 d1));
      t.handoff_window.(cpu) <- None
  | Call_completed { cpu; aborted; _ } ->
      (* An abort can consume a pending hand-off (the worker was retired
         in the window); close the window without judging it. *)
      if aborted then t.handoff_window.(cpu) <- None

(* --- state side (step hook) -------------------------------------------- *)

let check t =
  t.checks <- t.checks + 1;
  for cpu = 0 to t.cpus - 1 do
    (* Spare stack-frame conservation. *)
    let spares = Ppc.Engine.spare_frame_count t.ppc cpu in
    if spares <> t.spares_expected.(cpu) then
      record t
        ~key:(Printf.sprintf "frames/%d" cpu)
        (Printf.sprintf
           "cpu%d: spare stack frames out of balance: %d on the list, %d \
            accounted for"
           cpu spares t.spares_expected.(cpu));
    (* CD pool ownership + conservation. *)
    let pools = Ppc.Engine.cd_pools_on t.ppc cpu in
    let pool_sum =
      List.fold_left (fun acc p -> acc + Ppc.Cd_pool.size p) 0 pools
    in
    List.iter
      (fun p ->
        List.iter
          (fun cd ->
            let home = Ppc.Call_descriptor.home_cpu cd in
            if home <> cpu then
              record t
                ~key:(Printf.sprintf "cd-foreign/%d" cpu)
                (Printf.sprintf
                   "cpu%d: pool contains a CD homed on cpu%d (ownership \
                    violated)"
                   cpu home))
          (Ppc.Cd_pool.free_list p))
      pools;
    let lhs =
      pool_sum + t.cd_live_out.(cpu) + t.cd_trimmed.(cpu) + t.cd_dropped.(cpu)
    in
    let rhs = t.cd_baseline.(cpu) + t.cd_created.(cpu) in
    if lhs <> rhs then
      record t
        ~key:(Printf.sprintf "cd-conserve/%d" cpu)
        (Printf.sprintf
           "cpu%d: CD conservation violated: pool=%d out=%d trimmed=%d \
            dropped=%d vs baseline=%d created=%d"
           cpu pool_sum t.cd_live_out.(cpu) t.cd_trimmed.(cpu)
           t.cd_dropped.(cpu) t.cd_baseline.(cpu) t.cd_created.(cpu));
    (* Worker pool sanity + conservation. *)
    List.iter
      (fun ep ->
        List.iter
          (fun w ->
            if Ppc.Worker.retired w then
              record t
                ~key:(Printf.sprintf "w-retired/%d" cpu)
                (Printf.sprintf "cpu%d: retired worker parked in %s's pool"
                   cpu (Ppc.Entry_point.name ep));
            if Ppc.Worker.cpu_index w <> cpu then
              record t
                ~key:(Printf.sprintf "w-foreign/%d" cpu)
                (Printf.sprintf
                   "cpu%d: %s's pool holds a worker homed on cpu%d" cpu
                   (Ppc.Entry_point.name ep) (Ppc.Worker.cpu_index w)))
          (Ppc.Entry_point.per_cpu ep cpu).Ppc.Entry_point.pool)
      (Ppc.Engine.entry_points t.ppc);
    let live = pooled_workers t cpu + active_unretired t cpu in
    let expected = t.w_baseline.(cpu) + t.w_created.(cpu) - t.w_retired.(cpu) in
    if live <> expected then
      record t
        ~key:(Printf.sprintf "w-conserve/%d" cpu)
        (Printf.sprintf
           "cpu%d: worker conservation violated: %d live (pooled+active) vs \
            %d expected (baseline=%d created=%d retired=%d)"
           cpu live expected t.w_baseline.(cpu) t.w_created.(cpu)
           t.w_retired.(cpu))
  done

(* --- lifecycle ---------------------------------------------------------- *)

let attach ?(max_violations = 32) ppc =
  let kernel = Ppc.Engine.kernel ppc in
  let cpus = Kernel.n_cpus kernel in
  let t =
    {
      ppc;
      kernel;
      cpus;
      fp_window = Array.make cpus None;
      handoff_window = Array.make cpus None;
      cd_created = Array.make cpus 0;
      cd_trimmed = Array.make cpus 0;
      cd_dropped = Array.make cpus 0;
      cd_live_out = Array.make cpus 0;
      cd_baseline = Array.make cpus 0;
      spares_expected = Array.make cpus 0;
      w_created = Array.make cpus 0;
      w_retired = Array.make cpus 0;
      w_baseline = Array.make cpus 0;
      seen = Hashtbl.create 16;
      checks = 0;
      violations = [];
      max_violations;
    }
  in
  for cpu = 0 to cpus - 1 do
    t.cd_baseline.(cpu) <-
      List.fold_left
        (fun acc p -> acc + Ppc.Cd_pool.size p)
        0
        (Ppc.Engine.cd_pools_on ppc cpu);
    t.spares_expected.(cpu) <- Ppc.Engine.spare_frame_count ppc cpu;
    t.w_baseline.(cpu) <- pooled_workers t cpu + active_unretired t cpu
  done;
  Ppc.Engine.set_probe ppc (Some (on_event t));
  Sim.Engine.add_step_hook (Kernel.engine kernel) (fun () -> check t);
  t

let detach t =
  Ppc.Engine.set_probe t.ppc None;
  Sim.Engine.clear_step_hooks (Kernel.engine t.kernel)

let violations t = List.rev t.violations
let ok t = t.violations = []
let checks t = t.checks
