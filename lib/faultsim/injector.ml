(* Applies a fault plan to a running system.

   Every fault fires as an ordinary simulation event at its planned time,
   and every random choice (which worker to kill, how far to rotate a
   ready queue) comes from an [Sim.Rng] derived from the plan seed, so a
   plan replays identically.

   Interrupt storms need a device vector per CPU; [install] registers one
   per CPU at [vector_base + cpu], wired through [Intr_dispatch] to the
   caller-supplied device entry point. *)

type t = {
  ppc : Ppc.Engine.t;
  kernel : Kernel.t;
  cpus : int;
  rng : Sim.Rng.t;
  vector_base : int;
  (* per-CPU Frank fault budgets, consumed by the resource-fault hook *)
  frank_delay : (int * int) array;  (** (remaining, extra instructions) *)
  frank_fail : int array;  (** remaining forced failures *)
  mutable injected : int;  (** plan events applied so far *)
}

let sim t = Kernel.engine t.kernel

let injected t = t.injected

(* Frank resource-fault hook: forced failures take priority over delays;
   both are per-CPU budgets topped up by plan events. *)
let resource_verdict t ~cpu_index (_ : Ppc.Engine.resource) =
  if t.frank_fail.(cpu_index) > 0 then begin
    t.frank_fail.(cpu_index) <- t.frank_fail.(cpu_index) - 1;
    `Fail
  end
  else
    let remaining, extra = t.frank_delay.(cpu_index) in
    if remaining > 0 then begin
      t.frank_delay.(cpu_index) <- (remaining - 1, extra);
      `Delay extra
    end
    else `Proceed

let apply t (kind : Fault.kind) =
  t.injected <- t.injected + 1;
  let clamp cpu = ((cpu mod t.cpus) + t.cpus) mod t.cpus in
  match kind with
  | Fault.Pool_exhaust { cpu } ->
      ignore
        (Ppc.Engine.reclaim t.ppc ~cpu_index:(clamp cpu) ~max_workers:0
           ~max_cds:0 ())
  | Cd_exhaust { cpu } ->
      ignore
        (Ppc.Engine.reclaim t.ppc ~cpu_index:(clamp cpu) ~max_workers:max_int
           ~max_cds:0 ())
  | Worker_kill { cpu } -> (
      let cpu = clamp cpu in
      let candidates =
        List.filter
          (fun (_, w) ->
            Ppc.Worker.cpu_index w = cpu && not (Ppc.Worker.retired w))
          (Ppc.Engine.active_all t.ppc)
      in
      (* Hashtbl order is stable for a fixed runtime, but sort by PCB id
         anyway so the victim choice is obviously deterministic. *)
      let candidates =
        List.sort
          (fun (_, a) (_, b) ->
            compare
              (Kernel.Process.id (Ppc.Worker.pcb a))
              (Kernel.Process.id (Ppc.Worker.pcb b)))
          candidates
      in
      match candidates with
      | [] -> ()
      | l ->
          let ep_id, w = List.nth l (Sim.Rng.int t.rng (List.length l)) in
          ignore (Ppc.Engine.abort_worker t.ppc ~ep_id w))
  | Cache_flush { cpu } ->
      let c = Machine.cpu (Kernel.machine t.kernel) (clamp cpu) in
      Machine.Cache.flush (Machine.Cpu.dcache c);
      Machine.Cache.flush (Machine.Cpu.icache c);
      Machine.Tlb.flush_user (Machine.Cpu.tlb c)
  | Intr_storm { cpu; count; gap_us } ->
      let cpu = clamp cpu in
      let intr = Kernel.interrupts t.kernel in
      for i = 0 to count - 1 do
        Sim.Engine.schedule (sim t)
          ~after:(Sim.Time.us (i * max 1 gap_us))
          (fun () ->
            Kernel.Interrupt.raise_vector intr ~vector:(t.vector_base + cpu))
      done
  | Frank_delay { cpu; extra; count } ->
      let cpu = clamp cpu in
      let remaining, _ = t.frank_delay.(cpu) in
      t.frank_delay.(cpu) <- (remaining + max 1 count, max 1 extra)
  | Frank_fail { cpu; count } ->
      let cpu = clamp cpu in
      t.frank_fail.(cpu) <- t.frank_fail.(cpu) + max 1 count
  | Ready_perturb { cpu } ->
      let kc = Kernel.kcpu t.kernel (clamp cpu) in
      Kernel.Kcpu.perturb_ready kc (fun procs ->
          match procs with
          | [] | [ _ ] -> procs
          | _ ->
              let n = List.length procs in
              let k = 1 + Sim.Rng.int t.rng (n - 1) in
              let rec rotate k l =
                if k = 0 then l
                else match l with [] -> [] | x :: tl -> rotate (k - 1) (tl @ [ x ])
              in
              rotate k procs)
  | Foreign_cd_leak { src; dst } -> (
      let src = clamp src and dst = clamp dst in
      match Ppc.Cd_pool.unsafe_pop (Ppc.Engine.cd_pool t.ppc src) with
      | None -> ()
      | Some cd -> Ppc.Cd_pool.unsafe_push (Ppc.Engine.cd_pool t.ppc dst) cd)

let install ?(vector_base = 240) ppc ~storm_ep_id (plan : Fault.plan) =
  let kernel = Ppc.Engine.kernel ppc in
  let cpus = Kernel.n_cpus kernel in
  let t =
    {
      ppc;
      kernel;
      cpus;
      rng = Sim.Rng.create ~seed:plan.Fault.seed;
      vector_base;
      frank_delay = Array.make cpus (0, 0);
      frank_fail = Array.make cpus 0;
      injected = 0;
    }
  in
  Ppc.Engine.set_resource_fault ppc (Some (resource_verdict t));
  for cpu = 0 to cpus - 1 do
    Ppc.Intr_dispatch.attach ppc ~vector:(vector_base + cpu)
      ~kcpu:(Kernel.kcpu kernel cpu) ~ep_id:storm_ep_id
      ~make_args:(fun () -> Ppc.Reg_args.make ())
      ()
  done;
  List.iter
    (fun { Fault.at_us; kind } ->
      Sim.Engine.schedule_at (sim t) (Sim.Time.us at_us) (fun () ->
          apply t kind))
    plan.Fault.events;
  t
