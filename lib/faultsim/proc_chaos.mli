(** Process-level chaos for the cross-process shm transport: a
    supervised server child and a session client child under open-loop
    paced load, with seed-scheduled [SIGKILL]s of either side, audited
    by double-entry bookkeeping in a separate never-regenerated ledger
    segment.

    At quiesce the books must balance exactly: every claimed call has
    exactly one verdict (or died with a killed client, counted from a
    post-reap ledger snapshot), supervisor respawns and session
    releases and client reattaches each equal the kills injected
    against them, and the final segment holds zero non-free slab
    cells.  Any slack is a [violations] entry and the run fails.

    {b Fork safety:} [run] forks; call it only from a single-domain
    process (the [ppc_sim chaos] driver qualifies). *)

type report = {
  seed : int;
  calls : int;
  events : int;
  injected_server_kills : int;
  injected_client_kills : int;
  respawns : int;  (** supervisor respawns — must equal server kills *)
  releases : int;  (** session releases — must equal client kills *)
  reattaches : int;  (** client reattaches — must equal server kills *)
  started : int;  (** claimed call slots — must equal [calls] *)
  ok_calls : int;
  handler_faults : int;  (** must be zero: the handler cannot raise *)
  gave_up : int;  (** honest [Errc.retry] verdicts (budget exhausted) *)
  other_rc : int;  (** must be zero: outside the verdict set *)
  lost : int;  (** calls that died unresolved with a killed client *)
  leaked_cells : int;  (** must be zero at quiesce *)
  violations : string list;
}

val ok : report -> bool
(** No violations. *)

val pp_report : Format.formatter -> report -> unit

val to_markdown : report -> string
(** The per-seed verdict-reconciliation table CI uploads on failure. *)

val run : ?calls:int -> ?events:int -> ?pace_us:float -> seed:int -> unit -> report
(** One chaos run: [calls] (default 4000) Add2 calls at mean [pace_us]
    (default 60) exponential inter-arrivals, with [events] (default 6)
    kills at seed-drawn progress thresholds.  The schedule is a pure
    function of [seed]; wall-clock decides only the interleavings the
    invariants must survive.  Every internal wait is bounded, so a
    wedged run reports violations instead of hanging. *)
