(** QCheck scenario generation for fault plans, with shrinking.

    Plans are generated through an integer encoding mapped with
    [QCheck.map ~rev], so QCheck's stock shrinkers minimize failing
    scenarios (dropping events, shrinking times and parameters). *)

val arbitrary : ?max_us:int -> cpus:int -> unit -> Fault.plan QCheck.arbitrary
(** Plans of survivable faults only. *)

val arbitrary_with_leak :
  ?max_us:int -> cpus:int -> unit -> Fault.plan QCheck.arbitrary
(** Also draws the planted [Foreign_cd_leak] bug (needs >= 2 cpus). *)

val shrink_to_minimal :
  (Fault.plan -> bool) -> Fault.plan -> Fault.plan
(** [shrink_to_minimal still_fails plan] greedily drops events while
    [still_fails] holds: a deterministic local minimum, independent of
    QCheck's iteration budget. *)
