(* Deterministic fault scenarios for the *runtime* (real OCaml domains),
   the companion of {!Fault}'s simulator plans.  Each scenario builds a
   live Fastcall table / channel server, injects one class of fault
   through the runtime's own injectors (raise-in-handler, kill-shard,
   stall-reply, delay-doorbell, bounded-slab backpressure), drives calls
   against it, and self-checks the containment contract: faults come
   back as [Errc] codes, shards survive or are revived, no client
   wedges, no cell is recycled twice.  A scenario's verdict is its
   [violations] list — empty means the contract held.

   Scenarios are named and enumerable like the simulator plans
   ({!Fault.of_name}/{!Fault.names}), so the CLI and CI can drive them
   by name. *)

module F = Runtime.Fastcall
module Errc = Ipc_intf.Errc

type report = {
  name : string;
  attempted : int;  (** calls issued *)
  ok_calls : int;  (** calls that returned [Errc.ok] *)
  handler_faults : int;  (** contained handler exceptions (table-wide) *)
  timed_out : int;  (** deadline calls that abandoned their cell *)
  retries : int;  (** calls bounced with [Errc.retry] *)
  breaker_trips : int;
  respawns : int;  (** shard domains the supervisor restarted *)
  reclaimed : int;  (** abandoned cells recycled through the slab *)
  violations : string list;  (** empty = scenario passed *)
}

let ok r = r.violations = []

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>scenario %-16s %s@,\
    \  attempted=%d ok=%d handler_faults=%d timed_out=%d retries=%d@,\
    \  breaker_trips=%d respawns=%d reclaimed=%d@]"
    r.name
    (if ok r then "PASS" else "FAIL")
    r.attempted r.ok_calls r.handler_faults r.timed_out r.retries
    r.breaker_trips r.respawns r.reclaimed;
  List.iter (fun v -> Fmt.pf ppf "@,  violation: %s" v) (List.rev r.violations)

exception Boom

let words = F.arg_words
let rc_slot = words - 1
let mk_args () = Array.make words 0

(* Mutable scenario scratch: counters plus the violation accumulator. *)
type scratch = {
  mutable s_attempted : int;
  mutable s_ok : int;
  mutable s_bad : string list;
}

let scratch () = { s_attempted = 0; s_ok = 0; s_bad = [] }

let check sc cond msg = if not cond then sc.s_bad <- msg :: sc.s_bad

let count sc rc =
  sc.s_attempted <- sc.s_attempted + 1;
  if rc = Errc.ok then sc.s_ok <- sc.s_ok + 1

let finish ~name sc ~table ?server ?client () =
  {
    name;
    attempted = sc.s_attempted;
    ok_calls = sc.s_ok;
    handler_faults = F.handler_faults table;
    timed_out = (match client with Some c -> F.client_timeouts c | None -> 0);
    retries = (match client with Some c -> F.client_rejected c | None -> 0);
    breaker_trips = F.breaker_trips table;
    respawns = (match server with Some s -> F.channel_respawns s | None -> 0);
    reclaimed =
      (match client with Some c -> F.client_slab_reclaimed c | None -> 0);
    violations = sc.s_bad;
  }

(* --- raise-in-handler: containment without the breaker ----------------- *)

(* A handler that raises must neither kill the shard domain nor leak the
   exception to any caller: bad calls answer [handler_fault], good calls
   keep succeeding, before, between and after the faults. *)
let raise_in_handler () =
  let sc = scratch () in
  let t = F.create ~breaker_threshold:max_int () in
  let ep_good = F.register t (fun _ a -> a.(1) <- a.(0) + 1) in
  let ep_bad = F.register t (fun _ _ -> raise Boom) in
  let srv = F.spawn_channel_server ~shards:1 t in
  let cl = F.connect ~inline_uncontended:false srv in
  let rounds = 50 in
  for i = 1 to rounds do
    let a = mk_args () in
    let rc = F.channel_call cl ~ep:ep_bad a in
    count sc rc;
    check sc (rc = Errc.handler_fault)
      (Printf.sprintf "bad call %d: expected handler_fault, got %s" i
         (Errc.to_string rc));
    let a = mk_args () in
    a.(0) <- i;
    let rc = F.channel_call cl ~ep:ep_good a in
    count sc rc;
    check sc
      (rc = Errc.ok && a.(1) = i + 1)
      (Printf.sprintf "good call %d after a fault: got %s" i
         (Errc.to_string rc))
  done;
  check sc
    (F.handler_faults t = rounds)
    (Printf.sprintf "handler_faults: expected %d, got %d" rounds
       (F.handler_faults t));
  check sc (F.breaker_trips t = 0) "breaker tripped below threshold";
  let r = finish ~name:"raise-in-handler" sc ~table:t ~server:srv ~client:cl () in
  F.shutdown_channel_server srv;
  r

(* --- breaker-trip: consecutive faults soft-kill the entry point -------- *)

(* Deterministic trip with the lifecycle observed mid-drain: the outer
   activation of the faulty entry point holds an in-flight reference
   while its inner (raising) activations trip the breaker, so the slot
   must read Soft_killed — draining, not freed — at that instant.  Once
   the outer call retires, the drained slot frees and the ID answers
   no_entry. *)
let breaker_trip () =
  let sc = scratch () in
  let threshold = 4 in
  let t = F.create ~breaker_threshold:threshold () in
  let ep_ref = ref (-1) in
  let handler _ a =
    if a.(0) = 1 then raise Boom
    else begin
      (* Outer mode: fault the entry point to its threshold from inside
         an activation of the same entry point. *)
      let inner = mk_args () in
      for k = 1 to threshold do
        inner.(0) <- 1;
        inner.(rc_slot) <- 0;
        let rc = F.call t ~ep:!ep_ref inner in
        (* Faults up to the threshold answer handler_fault; the trip
           happens on the last one, under our in-flight hold. *)
        if k < threshold then
          check sc (rc = Errc.handler_fault)
            (Printf.sprintf "inner fault %d: got %s" k (Errc.to_string rc))
        else
          check sc (rc = Errc.handler_fault)
            (Printf.sprintf "tripping fault: got %s" (Errc.to_string rc))
      done;
      a.(1) <-
        (match F.lifecycle t ~ep:!ep_ref with
        | Some Ipc_intf.Lifecycle.Soft_killed -> 1
        | Some Ipc_intf.Lifecycle.Active -> 2
        | Some Ipc_intf.Lifecycle.Hard_killed -> 3
        | None -> 0)
    end
  in
  let ep = F.register t handler in
  ep_ref := ep;
  let a = mk_args () in
  let rc = F.call t ~ep a in
  count sc rc;
  check sc (rc = Errc.ok)
    (Printf.sprintf "outer call: expected ok (soft kill drains), got %s"
       (Errc.to_string rc));
  check sc (a.(1) = 1)
    (Printf.sprintf
       "lifecycle under the outer in-flight hold: expected Soft_killed, \
        observed code %d"
       a.(1));
  check sc
    (F.breaker_trips t = 1)
    (Printf.sprintf "breaker_trips: expected 1, got %d" (F.breaker_trips t));
  check sc
    (F.handler_faults t = threshold)
    (Printf.sprintf "handler_faults: expected %d, got %d" threshold
       (F.handler_faults t));
  (* Outer call retired: the drained slot must now be freed. *)
  check sc
    (F.lifecycle t ~ep = None)
    "slot not freed after the tripped entry point drained";
  (match F.call t ~ep (mk_args ()) with
  | rc -> check sc false (Printf.sprintf "freed ID answered %d" rc)
  | exception F.No_entry _ -> ());
  finish ~name:"breaker-trip" sc ~table:t ()

(* --- kill-shard: supervisor detects, fails over, respawns -------------- *)

let kill_shard () =
  let sc = scratch () in
  let t = F.create () in
  let ep = F.register t (fun _ a -> a.(1) <- a.(0) * 2) in
  (* Long poll: the first deadline call must expire before the
     supervisor revives the shard, making the timeout deterministic. *)
  let srv =
    F.spawn_channel_server ~shards:1 ~supervise:true ~supervisor_poll:2_000_000
      t
  in
  let cl = F.connect ~inline_uncontended:false srv in
  let a = mk_args () in
  a.(0) <- 21;
  let rc = F.channel_call cl ~ep a in
  count sc rc;
  check sc (rc = Errc.ok && a.(1) = 42) "warm call before the kill failed";
  F.kill_shard srv ~shard:0;
  (* Dead shard: a bounded call must fail fast — timed_out from the
     abandonment path (or handler_fault if the supervisor's fail-sweep
     got to the cell first), never a wedge.  Deadlines are nanoseconds:
     200 µs expires well before the supervisor's long poll fires. *)
  let a = mk_args () in
  a.(0) <- 1;
  let rc = F.channel_call_deadline cl ~ep ~deadline:200_000 a in
  count sc rc;
  check sc
    (rc = Errc.timed_out || rc = Errc.handler_fault)
    (Printf.sprintf "call against the dead shard answered %s"
       (Errc.to_string rc));
  (* Keep issuing bounded calls until the supervisor has revived the
     shard and a call succeeds. *)
  let recovered = ref false in
  let tries = ref 0 in
  while (not !recovered) && !tries < 500 do
    incr tries;
    let a = mk_args () in
    a.(0) <- !tries;
    let rc = F.channel_call_deadline cl ~ep ~deadline:2_000_000 a in
    count sc rc;
    if rc = Errc.ok then begin
      recovered := true;
      check sc (a.(1) = !tries * 2) "recovered call returned a wrong result"
    end
    else
      check sc
        (rc = Errc.timed_out || rc = Errc.handler_fault || rc = Errc.retry)
        (Printf.sprintf "during recovery: unexpected %s" (Errc.to_string rc))
  done;
  check sc !recovered "no call succeeded after the supervisor respawn";
  check sc
    (F.channel_respawns srv >= 1)
    "supervisor never respawned the killed shard";
  let r = finish ~name:"kill-shard" sc ~table:t ~server:srv ~client:cl () in
  F.shutdown_channel_server srv;
  r

(* --- stall-reply: deadline abandonment against a wedged handler -------- *)

let stall_reply () =
  let sc = scratch () in
  let gate = Atomic.make false in
  let t = F.create () in
  let ep_stall =
    F.register t (fun _ a ->
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        a.(1) <- 42)
  in
  let srv = F.spawn_channel_server ~shards:1 t in
  let cl = F.connect ~inline_uncontended:false srv in
  let a = mk_args () in
  let rc = F.channel_call_deadline cl ~ep:ep_stall ~deadline:500_000 a in
  count sc rc;
  check sc (rc = Errc.timed_out)
    (Printf.sprintf "stalled call: expected timed_out, got %s"
       (Errc.to_string rc));
  check sc (F.client_timeouts cl = 1) "timeout not counted";
  (* Unwedge the handler: the shard finishes, must discard the reply
     into the reclaim stack (never signal the long-gone client). *)
  Atomic.set gate true;
  let spins = ref 0 in
  while F.client_slab_reclaimed cl < 1 && !spins < 50_000_000 do
    incr spins;
    Domain.cpu_relax ()
  done;
  check sc
    (F.client_slab_reclaimed cl = 1)
    "abandoned cell was not reclaimed after the stall cleared";
  (* The channel is healthy again; the reclaimed cell serves this call. *)
  let a = mk_args () in
  let rc = F.channel_call cl ~ep:ep_stall a in
  count sc rc;
  check sc
    (rc = Errc.ok && a.(1) = 42)
    (Printf.sprintf "call after the stall cleared: got %s" (Errc.to_string rc));
  let r = finish ~name:"stall-reply" sc ~table:t ~server:srv ~client:cl () in
  F.shutdown_channel_server srv;
  r

(* --- delay-doorbell: widened park/ring race loses no wakeups ----------- *)

let delay_doorbell () =
  let sc = scratch () in
  let t = F.create () in
  let ep = F.register t (fun _ a -> a.(1) <- a.(0) + 7) in
  (* Tiny server spin so the shard parks constantly — every call then
     exercises the delayed ring against a parking consumer. *)
  let srv = F.spawn_channel_server ~shards:1 ~server_spin:8 t in
  let cl = F.connect ~inline_uncontended:false srv in
  F.inject_doorbell_delay srv ~shard:0 300;
  for i = 1 to 200 do
    let a = mk_args () in
    a.(0) <- i;
    let rc = F.channel_call cl ~ep a in
    count sc rc;
    check sc
      (rc = Errc.ok && a.(1) = i + 7)
      (Printf.sprintf "delayed-doorbell call %d: got %s" i (Errc.to_string rc))
  done;
  F.inject_doorbell_delay srv ~shard:0 0;
  let r = finish ~name:"delay-doorbell" sc ~table:t ~server:srv ~client:cl () in
  F.shutdown_channel_server srv;
  r

(* --- backpressure: bounded slab answers retry, Backoff reports truth --- *)

let backpressure () =
  let sc = scratch () in
  let t = F.create () in
  let ep = F.register t (fun _ a -> a.(1) <- 1) in
  let srv = F.spawn_channel_server ~shards:1 t in
  let cl = F.connect ~slab_capacity:2 ~slab_max:2 ~inline_uncontended:false srv in
  (* Kill the only shard with no supervisor: every cell the client
     abandons stays in flight, so the 2-cell slab exhausts after two
     timeouts and the third call must bounce with retry. *)
  F.kill_shard srv ~shard:0;
  for i = 1 to 2 do
    let a = mk_args () in
    let rc = F.channel_call_deadline cl ~ep ~deadline:200_000 a in
    count sc rc;
    check sc (rc = Errc.timed_out)
      (Printf.sprintf "abandoning call %d: expected timed_out, got %s" i
         (Errc.to_string rc))
  done;
  let a = mk_args () in
  let rc =
    Runtime.Backoff.with_retry ~attempts:3 ~min_spin:16 ~max_spin:64 (fun () ->
        let rc = F.channel_call_deadline cl ~ep ~deadline:50_000 a in
        count sc rc;
        rc)
  in
  check sc (rc = Errc.retry)
    (Printf.sprintf
       "exhausted slab behind a dead shard: expected retry, got %s"
       (Errc.to_string rc));
  check sc (F.client_rejected cl >= 1) "rejected calls not counted";
  let r = finish ~name:"backpressure" sc ~table:t ~server:srv ~client:cl () in
  F.shutdown_channel_server srv;
  r

(* --- kill-mover: bulk engine strands descriptors, fail sweep ----------- *)

(* Kill the copy engine's mover mid-copy: completions already posted
   win, everything still in flight must be failed by the client's next
   reap with [handler_fault], exactly once per descriptor (tags never
   duplicated), and submits after the death must answer [killed].

   Two phases.  First a real mover domain drains a warm batch to
   completion (the engine under its production driver).  Then a
   manually-stepped mover is killed exactly halfway through a second
   batch — the split between completed and swept descriptors is
   deterministic, so CI can re-run this scenario verbatim. *)
let kill_mover () =
  let sc = scratch () in
  let module E = Transfer.Copy_engine in
  let seen = Hashtbl.create 64 in
  let completed = ref 0 and swept = ref 0 and submitted = ref 0 in
  let on_complete ~tag ~rc =
    check sc (not (Hashtbl.mem seen tag))
      (Printf.sprintf "tag %d completed twice" tag);
    Hashtbl.replace seen tag rc;
    if rc = Errc.ok then incr completed
    else begin
      check sc (rc = Errc.handler_fault)
        (Printf.sprintf "tag %d failed with %s, expected handler_fault" tag
           (Errc.to_string rc));
      incr swept
    end
  in
  let setup () =
    let eng, store = E.create_with_buffers () in
    let reg = function
      | Ok id -> id
      | Error rc -> failwith (Errc.to_string rc)
    in
    let bytes = 256 * 1024 in
    let src = reg (E.Buffers.add store ~owner:0 (Bytes.create bytes)) in
    let dst = reg (E.Buffers.add store ~owner:0 (Bytes.create bytes)) in
    let cl = E.connect ~on_complete eng in
    (eng, cl, src, dst)
  in
  let submit_one cl ~src ~dst tag =
    match
      E.submit cl ~op:Ipc_intf.Wellknown.bulk_copy ~src ~src_off:0 ~dst
        ~dst_off:0 ~len:4096 ~tag
    with
    | rc when rc = Errc.ok -> incr submitted
    | rc ->
        check sc false
          (Printf.sprintf "submit tag %d answered %s" tag (Errc.to_string rc))
  in
  (* Phase 1: a live mover domain, batch of 24, drained clean — the
     engine under its production driver, before any fault. *)
  let eng1, cl1, src1, dst1 = setup () in
  let mover1 = Transfer.Mover.spawn eng1 in
  for tag = 0 to 23 do
    submit_one cl1 ~src:src1 ~dst:dst1 tag
  done;
  ignore (E.flush cl1);
  let spins = ref 0 in
  while E.outstanding cl1 > 0 && !spins < 50_000_000 do
    incr spins;
    ignore (E.reap cl1);
    Domain.cpu_relax ()
  done;
  Transfer.Mover.shutdown mover1;
  check sc (!completed = 24)
    (Printf.sprintf "warm batch: %d of 24 completed" !completed);
  check sc (!swept = 0) "warm batch produced spurious sweep failures";
  (* Phase 2: a fresh engine whose stepped mover is killed exactly
     halfway — 16 of 32 execute, then the kill; the stranded 16 must
     come back handler_fault on the next reap. *)
  let eng2, cl2, src2, dst2 = setup () in
  ignore eng2;
  let mover2 = Transfer.Mover.manual eng2 in
  for tag = 100 to 131 do
    submit_one cl2 ~src:src2 ~dst:dst2 tag
  done;
  ignore (E.flush cl2);
  let executed = Transfer.Mover.step mover2 ~budget:16 in
  check sc (executed = 16)
    (Printf.sprintf "stepped mover executed %d of the budgeted 16" executed);
  ignore (E.reap cl2);
  check sc (!completed = 24 + 16)
    (Printf.sprintf "mid-copy completions: %d, expected 40" !completed);
  Transfer.Mover.kill mover2;
  (* The mover is dead and [kill] returned: one reap must deliver the
     fail sweep for everything still in flight. *)
  ignore (E.reap cl2);
  sc.s_attempted <- !submitted;
  sc.s_ok <- !completed;
  check sc (!swept = 16)
    (Printf.sprintf "sweep failed %d descriptors, expected 16" !swept);
  check sc
    (!completed + !swept = !submitted)
    (Printf.sprintf "completions %d + swept %d <> submitted %d" !completed
       !swept !submitted);
  check sc (E.outstanding cl2 = 0) "descriptors still outstanding after sweep";
  check sc
    (Hashtbl.length seen = !submitted)
    "some submitted tag never completed";
  (match
     E.submit cl2 ~op:Ipc_intf.Wellknown.bulk_copy ~src:src2 ~src_off:0
       ~dst:dst2 ~dst_off:0 ~len:64 ~tag:999
   with
  | rc when rc = Errc.killed -> ()
  | rc ->
      check sc false
        (Printf.sprintf "submit after mover death answered %s"
           (Errc.to_string rc)));
  let cs = E.client_stats cl2 in
  check sc
    (cs.E.cs_failed_swept = !swept)
    (Printf.sprintf "sweep counter %d <> observed %d" cs.E.cs_failed_swept
       !swept);
  {
    name = "kill-mover";
    attempted = sc.s_attempted;
    ok_calls = sc.s_ok;
    handler_faults = !swept;
    timed_out = 0;
    retries = cs.E.cs_rejected;
    breaker_trips = 0;
    respawns = 0;
    reclaimed = 0;
    violations = sc.s_bad;
  }

(* --- registry ---------------------------------------------------------- *)

let scenarios =
  [
    ("raise-in-handler", raise_in_handler);
    ("breaker-trip", breaker_trip);
    ("kill-shard", kill_shard);
    ("stall-reply", stall_reply);
    ("delay-doorbell", delay_doorbell);
    ("backpressure", backpressure);
    ("kill-mover", kill_mover);
  ]

let names = List.map fst scenarios

let run name =
  match List.assoc_opt name scenarios with
  | Some f -> Some (f ())
  | None -> None

let run_all () = List.map (fun (_, f) -> f ()) scenarios
