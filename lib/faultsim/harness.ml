(* A self-contained workload that exercises every engine path the faults
   target, with the invariant checker attached and a plan installed.

   The system under test: three servers —

   - "echo", a user-level server primed only on CPU 0, so calls from
     other processors hit Frank's worker/CD slow path (the resource
     faults have something to bite);
   - "held", a kernel server that keeps its CD between calls (hold_cd),
     exercising the held-CD dismantling paths under kills and reclaim;
   - "dev", a kernel device server; interrupt storms are delivered as
     async PPCs to it through [Intr_dispatch];
   - "slow", a kernel server whose handler blocks mid-call, giving
     worker kills a victim on the abort path.

   Clients on every CPU round-robin synchronous calls across the
   servers.  The run is fully deterministic: same plan, same report —
   [digest] condenses the outcome for byte-identical comparison. *)

type report = {
  plan : Fault.plan;
  calls_attempted : int;
  calls_ok : int;
  calls_killed : int;  (** rc = err_killed seen by clients *)
  calls_rejected : int;  (** rc = err_no_resources seen by clients *)
  aborted_calls : int;
  rejected_calls : int;
  resource_failures : int;
  handler_faults : int;
  frank_worker_creations : int;
  frank_cd_creations : int;
  injected : int;
  checks : int;
  sim_events : int;
  final_us : float;
  violations : Invariant.violation list;
  trace_tail : string list;  (** last trace events, only kept on violation *)
}

let slow_handler ctx args =
  (* Block mid-call; a scheduled event readies us unless a fault killed
     the worker first (then the wake finds a dead process and backs off). *)
  let self = ctx.Ppc.Call_ctx.self in
  let kc = ctx.Ppc.Call_ctx.kcpu in
  Sim.Engine.schedule ctx.Ppc.Call_ctx.engine ~after:(Sim.Time.us 20)
    (fun () ->
      if Kernel.Process.state self = Kernel.Process.Blocked then
        Kernel.Kcpu.ready kc self);
  Kernel.Kcpu.block kc self;
  Ppc.Reg_args.set_rc args Ppc.Reg_args.ok

let run ?(cpus = 2) ?(clients_per_cpu = 2) ?(calls_per_client = 30)
    ?(trace_capacity = 512) (plan : Fault.plan) =
  let kern = Kernel.create ~cpus () in
  let trace = Sim.Trace.create ~capacity:trace_capacity () in
  Sim.Engine.set_trace (Kernel.engine kern) (Some trace);
  let ppc = Ppc.create kern in
  let echo_server = Ppc.make_user_server ppc ~name:"echo" () in
  let echo = Ppc.register_direct ppc ~server:echo_server ~handler:Ppc.Null_server.echo in
  let held_server = Ppc.make_kernel_server ppc ~name:"held" ~hold_cd:true () in
  let held =
    Ppc.register_direct ppc ~server:held_server
      ~handler:(Ppc.Null_server.handler ~instr:10 ())
  in
  let dev_server = Ppc.make_kernel_server ppc ~name:"dev" () in
  let dev =
    Ppc.register_direct ppc ~server:dev_server
      ~handler:(Ppc.Null_server.handler ~instr:15 ())
  in
  let slow_server = Ppc.make_kernel_server ppc ~name:"slow" () in
  let slow = Ppc.register_direct ppc ~server:slow_server ~handler:slow_handler in
  (* Prime echo on CPU 0 only: other CPUs exercise Frank's slow path. *)
  Ppc.prime ppc ~ep:echo ~cpus:[ 0 ];
  Ppc.prime ppc ~ep:slow ~cpus:(List.init cpus Fun.id);
  let inv = Invariant.attach (Ppc.engine ppc) in
  let inj =
    Injector.install (Ppc.engine ppc)
      ~storm_ep_id:(Ppc.Entry_point.id dev)
      plan
  in
  let eps =
    [| Ppc.Entry_point.id echo; Ppc.Entry_point.id held;
       Ppc.Entry_point.id slow |]
  in
  let attempted = ref 0 and ok = ref 0 and killed = ref 0 and rejected = ref 0 in
  for cpu = 0 to cpus - 1 do
    for c = 0 to clients_per_cpu - 1 do
      let name = Printf.sprintf "client%d.%d" cpu c in
      let program = Kernel.new_program kern ~name in
      let space = Kernel.new_user_space kern ~name ~node:cpu in
      ignore
        (Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program
           ~space (fun self ->
             for i = 0 to calls_per_client - 1 do
               let ep_id = eps.((i + c) mod Array.length eps) in
               incr attempted;
               let rc =
                 Ppc.call ppc ~client:self ~ep_id (Ppc.Reg_args.make ())
               in
               if rc = Ppc.Reg_args.ok then incr ok
               else if rc = Ppc.Reg_args.err_killed then incr killed
               else if rc = Ppc.Reg_args.err_no_resources then incr rejected
             done))
    done
  done;
  Kernel.run kern;
  let stats = Ppc.stats ppc in
  let violations = Invariant.violations inv in
  let trace_tail =
    if violations = [] then []
    else
      List.map
        (fun ev -> Fmt.str "%a" Sim.Trace.pp_event ev)
        (Sim.Trace.events trace)
  in
  Invariant.detach inv;
  {
    plan;
    calls_attempted = !attempted;
    calls_ok = !ok;
    calls_killed = !killed;
    calls_rejected = !rejected;
    aborted_calls = stats.Ppc.Engine.aborted_calls;
    rejected_calls = stats.Ppc.Engine.rejected_calls;
    resource_failures = stats.Ppc.Engine.resource_failures;
    handler_faults = stats.Ppc.Engine.handler_faults;
    frank_worker_creations = stats.Ppc.Engine.frank_worker_creations;
    frank_cd_creations = stats.Ppc.Engine.frank_cd_creations;
    injected = Injector.injected inj;
    checks = Invariant.checks inv;
    sim_events = Sim.Engine.executed_events (Kernel.engine kern);
    final_us = Sim.Time.to_us (Kernel.now kern);
    violations;
    trace_tail;
  }

(* Condensed, stable rendering of everything observable; two runs of the
   same plan must produce equal digests. *)
let digest r =
  Printf.sprintf
    "events=%d final=%.3f attempted=%d ok=%d killed=%d norsrc=%d aborts=%d \
     rejects=%d resfail=%d faults=%d frank_w=%d frank_cd=%d injected=%d \
     violations=%d"
    r.sim_events r.final_us r.calls_attempted r.calls_ok r.calls_killed
    r.calls_rejected r.aborted_calls r.rejected_calls r.resource_failures
    r.handler_faults r.frank_worker_creations r.frank_cd_creations r.injected
    (List.length r.violations)

let pp_report ppf r =
  Fmt.pf ppf "%a@.calls: %d attempted, %d ok, %d killed, %d no-resources@."
    Fault.pp_plan r.plan r.calls_attempted r.calls_ok r.calls_killed
    r.calls_rejected;
  Fmt.pf ppf
    "engine: %d aborted, %d rejected, %d resource failures, %d frank worker \
     + %d cd creations@."
    r.aborted_calls r.rejected_calls r.resource_failures
    r.frank_worker_creations r.frank_cd_creations;
  Fmt.pf ppf "sim: %d events, %.1fus, %d faults injected, %d invariant checks@."
    r.sim_events r.final_us r.injected r.checks;
  (match r.violations with
  | [] -> Fmt.pf ppf "invariants: all hold@."
  | vs ->
      Fmt.pf ppf "invariants: %d VIOLATION(S)@." (List.length vs);
      List.iter (fun v -> Fmt.pf ppf "  %a@." Invariant.pp_violation v) vs);
  match r.trace_tail with
  | [] -> ()
  | tail ->
      Fmt.pf ppf "trace tail:@.";
      List.iter (fun line -> Fmt.pf ppf "  %s@." line) tail

let ok r = r.violations = []
