(** Server-side program-ID authentication (Section 4.1): per-server ACLs,
    no global capability state. *)

type perm = Ipc_intf.Auth.perm = Read | Write | Admin
(** Shared with the runtime control plane via {!Ipc_intf.Auth}. *)

type t

val create : data_addr:int -> unit -> t
(** [data_addr] locates the server's client-state table (for charged
    lookups). *)

val grant : t -> program:Kernel.Program.id -> perms:perm list -> unit
val revoke : t -> program:Kernel.Program.id -> unit

val check : t -> Ppc.Call_ctx.t -> perm:perm -> bool
(** Charged lookup of the caller's permissions. *)

val require : t -> Ppc.Call_ctx.t -> perm:perm -> Ppc.Reg_args.t -> bool
(** Like {!check}, but sets [err_denied] in the RC on failure. *)

val checks : t -> int
val denials : t -> int
