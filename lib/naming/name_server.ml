(* The Name Server (paper Section 4.5.5).

   "The ID can then be registered with the Name Server (which has a
   well-known entry point ID).  A client that wants to call the server
   obtains the server's entry point ID from the Name Server, and uses the
   ID as an argument on subsequent PPC operations."

   Names are strings; since a PPC carries eight words, the client-side
   stub hashes the name into two words (charging the hashing
   instructions) and the registry is keyed by that pair.  Authentication
   is *not* the name server's job — any program may look names up, and
   servers verify callers themselves by program ID (Section 4.1). *)

(* Well-known ID and opcode map from the shared control-plane
   vocabulary, common with the runtime's name registry. *)
let well_known_id = Ipc_intf.Wellknown.name_server_ep

let op_register = Ipc_intf.Wellknown.op_register
let op_lookup = Ipc_intf.Wellknown.op_lookup
let op_unregister = Ipc_intf.Wellknown.op_unregister

type t = {
  ppc : Ppc.t;
  mutable ns_ep : int;  (** this instance's entry point *)
  registry_addr : int;
      (** the registry's shared memory: bindings are mutable shared data,
          so consistent reads on a coherence-free machine are uncached —
          remote callers pay ring distance (motivates clustering, A9) *)
  registry_lock : Kernel.Spinlock.t;
      (** bindings span several words; without coherent atomics a reader
          must lock to see a consistent entry — the serialisation that
          per-cluster replicas relieve *)
  names : (int * int, int) Hashtbl.t;  (** hashed name -> entry point *)
  owners : (int * int, Kernel.Program.id) Hashtbl.t;
}

let ep_id t = t.ns_ep

(* FNV-1a over the name, split into two 30-bit words.  The function is
   the shared one: a name registered through the runtime's registry
   hashes identically. *)
let hash_name = Ipc_intf.Name_hash.hash_name

let charge_hash ctx_cpu ~code name =
  (* The stub hashes the name: a few instructions per character. *)
  Machine.Cpu.instr ~code ctx_cpu (4 * String.length name)

let handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code ctx.Call_ctx.cpu 30;
  Null_server.touch_stack ctx ~words:4;
  (* Registry probe: multi-word mutable shared bindings, read uncached
     under the registry lock for consistency. *)
  Kernel.Spinlock.acquire ctx.Call_ctx.engine ctx.Call_ctx.cpu
    ctx.Call_ctx.self t.registry_lock;
  Machine.Cpu.uncached_load ctx.Call_ctx.cpu t.registry_addr;
  Machine.Cpu.uncached_load ctx.Call_ctx.cpu (t.registry_addr + 16);
  Machine.Cpu.uncached_load ctx.Call_ctx.cpu (t.registry_addr + 32);
  Kernel.Spinlock.release ctx.Call_ctx.engine ctx.Call_ctx.cpu
    ctx.Call_ctx.self t.registry_lock;
  let key = (Reg_args.get args 0, Reg_args.get args 1) in
  let op = Reg_args.op args in
  if op = op_register then begin
    match Hashtbl.find_opt t.names key with
    | Some _ -> Reg_args.set_rc args Reg_args.err_bad_request
    | None ->
        Hashtbl.replace t.names key (Reg_args.get args 2);
        Hashtbl.replace t.owners key ctx.Call_ctx.caller_program;
        Reg_args.set_rc args Reg_args.ok
  end
  else if op = op_lookup then begin
    match Hashtbl.find_opt t.names key with
    | Some ep ->
        Reg_args.set args 0 ep;
        Reg_args.set_rc args Reg_args.ok
    | None -> Reg_args.set_rc args Reg_args.err_no_entry
  end
  else if op = op_unregister then begin
    (* Only the registering program may remove a binding. *)
    match Hashtbl.find_opt t.owners key with
    | Some owner when owner = ctx.Call_ctx.caller_program ->
        Hashtbl.remove t.names key;
        Hashtbl.remove t.owners key;
        Reg_args.set_rc args Reg_args.ok
    | Some _ -> Reg_args.set_rc args Reg_args.err_denied
    | None -> Reg_args.set_rc args Reg_args.err_no_entry
  end
  else Reg_args.set_rc args Reg_args.err_bad_request

(* Build an instance: the machine-wide one at the well-known ID, or a
   cluster replica at a fresh ID with its registry homed on [node]. *)
let install_at ppc ~node ~well_known ~prime_cpus =
  let kern = Ppc.kernel ppc in
  let t =
    {
      ppc;
      ns_ep = -1;
      registry_addr = Kernel.alloc kern ~bytes:2048 ~node;
      registry_lock =
        Kernel.Spinlock.create ~addr:(Kernel.alloc kern ~bytes:16 ~node) ();
      names = Hashtbl.create 64;
      owners = Hashtbl.create 64;
    }
  in
  let server =
    Ppc.make_kernel_server ppc ~name:"name-server" ~hold_cd:true ~node ()
  in
  let ep =
    if well_known then
      Ppc.Engine.install_ep (Ppc.engine ppc) ~id:well_known_id
        ~name:"name-server" ~server ~handler:(handler t)
    else
      Ppc.Engine.alloc_ep (Ppc.engine ppc) ~name:"name-server-replica" ~server
        ~handler:(handler t)
  in
  t.ns_ep <- Ppc.Entry_point.id ep;
  List.iter
    (fun cpu_index ->
      let w =
        Ppc.Engine.create_worker (Ppc.engine ppc) ep ~cpu_index ~charged:false
      in
      Ppc.Entry_point.add_worker ep ~cpu_index w)
    prime_cpus;
  t

let install ppc =
  let kern = Ppc.kernel ppc in
  install_at ppc ~node:0 ~well_known:true
    ~prime_cpus:(List.init (Kernel.n_cpus kern) Fun.id)

(* Client-side stubs: normal PPC calls to EP 0. *)

let stub_call t ~client ~op ~name ~ep_value =
  let open Ppc in
  let kern = Ppc.kernel t.ppc in
  let kc = Kernel.kcpu kern (Kernel.Process.cpu_index client) in
  let pc =
    Ppc.Layout.per_cpu
      (Ppc.Engine.layout (Ppc.engine t.ppc))
      (Kernel.Process.cpu_index client)
  in
  charge_hash (Kernel.Kcpu.cpu kc) ~code:pc.Ppc.Layout.user_stub name;
  let h1, h2 = hash_name name in
  let args = Reg_args.make () in
  Reg_args.set args 0 h1;
  Reg_args.set args 1 h2;
  Reg_args.set args 2 ep_value;
  Reg_args.set_op args ~op ~flags:0;
  let rc =
    Ppc.call t.ppc ~client
      ~opflags:(Reg_args.op_flags ~op ~flags:0)
      ~ep_id:t.ns_ep args
  in
  (rc, Reg_args.get args 0)

let register t ~client ~name ~ep_id =
  fst (stub_call t ~client ~op:op_register ~name ~ep_value:ep_id)

let lookup t ~client ~name =
  match stub_call t ~client ~op:op_lookup ~name ~ep_value:0 with
  | rc, ep when rc = Ppc.Reg_args.ok -> Ok ep
  | rc, _ -> Error rc

let unregister t ~client ~name =
  fst (stub_call t ~client ~op:op_unregister ~name ~ep_value:0)

let bindings t = Hashtbl.length t.names
