(* Server-side authentication (paper Section 4.1).

   "Callers are identified to servers by their program ID, which can then
   be used by the server to retrieve client-specific state so they can
   verify whether the client is permitted to make the call."

   An ACL is per-server state: checking it costs a lookup in the server's
   own data (charged against the worker's CPU under the current — i.e.
   server-time — category).  No global capability structures exist, which
   is exactly what keeps the IPC path free of shared data. *)

(* The permission vocabulary is shared with the runtime control plane. *)
type perm = Ipc_intf.Auth.perm = Read | Write | Admin

type t = {
  acl : (Kernel.Program.id, perm list) Hashtbl.t;
  data_addr : int;  (** where the client-state table lives *)
  mutable checks : int;
  mutable denials : int;
}

let create ~data_addr () =
  { acl = Hashtbl.create 16; data_addr; checks = 0; denials = 0 }

let grant t ~program ~perms = Hashtbl.replace t.acl program perms

let revoke t ~program = Hashtbl.remove t.acl program

(* Charged check: hash the program ID into the client-state table and
   load the entry. *)
let check t ctx ~perm =
  t.checks <- t.checks + 1;
  let cpu = ctx.Ppc.Call_ctx.cpu in
  Machine.Cpu.instr ~code:ctx.Ppc.Call_ctx.server_code cpu 8;
  let slot = ctx.Ppc.Call_ctx.caller_program mod 64 in
  Machine.Cpu.load cpu (t.data_addr + (slot * 8));
  let ok =
    match Hashtbl.find_opt t.acl ctx.Ppc.Call_ctx.caller_program with
    | Some perms -> List.mem perm perms
    | None -> false
  in
  if not ok then t.denials <- t.denials + 1;
  ok

(* Check-and-reject helper for handlers: returns [true] if the call may
   proceed, otherwise sets the RC. *)
let require t ctx ~perm args =
  if check t ctx ~perm then true
  else begin
    Ppc.Reg_args.set_rc args Ppc.Reg_args.err_denied;
    false
  end

let checks t = t.checks
let denials t = t.denials
