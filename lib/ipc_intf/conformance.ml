(* The functorized conformance suite: one set of control-plane
   scenarios, instantiated once against the simulator engine and once
   against the real-domain runtime, so the two embodiments cannot drift.

   Scenarios are deliberately single-threaded — they pin down the
   *semantics* of the lifecycle state machine (registration, naming,
   exchange, the two kill strategies, ID-reuse safety).  Concurrent
   behavior (soft-kill under fire, quiesced shutdown) is embodiment-
   specific and lives with each stack's own stress tests.

   Where the embodiments legitimately differ the contract is a
   disjunction, stated in the comment above each check:
   - a call racing its own entry point's hard-kill completes in the
     simulator (running workers finish, then retire) but is aborted
     with [Errc.killed] in the runtime (which cannot preempt a domain);
   - a freed raw ID answers [Errc.no_entry] in the simulator (IDs are
     monotonic) but may have been recycled to a *new* service by the
     runtime's slot allocator.  What is invariant: the old behavior is
     unreachable, through any path, forever. *)

module Make (S : Sigs.SUBJECT) = struct
  exception Violation of string

  let failf scenario fmt =
    Printf.ksprintf
      (fun msg -> raise (Violation (Printf.sprintf "[%s] %s: %s" S.name scenario msg)))
      fmt

  let check scenario what cond =
    if not cond then failf scenario "%s" what

  let check_rc scenario what expected rc =
    if rc <> expected then
      failf scenario "%s: expected %s, got %s" what (Errc.to_string expected)
        (Errc.to_string rc)

  let args () = Array.make 8 0

  let with_world f =
    let t = S.setup () in
    Fun.protect ~finally:(fun () -> S.teardown t) (fun () -> f t)

  (* A behavior spec that stamps [tag] into slot 0 and returns ok.
     Specs, not closures: the subject may compile them in another OS
     process (see {!Sigs.spec}). *)
  let stamp tag = Sigs.Stamp tag

  let sc_register_and_call () =
    with_world (fun t ->
        let ep = S.register t Sigs.Add2 in
        let a = args () in
        a.(0) <- 40;
        a.(1) <- 2;
        check_rc "register-and-call" "call rc" Errc.ok (S.call t ep a);
        check "register-and-call" "in-place result" (a.(0) = 42);
        check "register-and-call" "idle in_flight" (S.in_flight t ep = 0))

  let sc_publish_lookup_call () =
    with_world (fun t ->
        let ep = S.register t (stamp 42) in
        check_rc "publish-lookup-call" "publish rc" Errc.ok
          (S.publish t ~name:"bob" ep);
        (match S.lookup t ~name:"bob" with
        | Ok id ->
            check "publish-lookup-call" "lookup returns the bound id"
              (id = S.id t ep);
            let a = args () in
            check_rc "publish-lookup-call" "call by looked-up id" Errc.ok
              (S.call_id t ~id a);
            check "publish-lookup-call" "behavior ran" (a.(0) = 42)
        | Error rc ->
            failf "publish-lookup-call" "lookup failed: %s" (Errc.to_string rc)))

  let sc_lookup_missing () =
    with_world (fun t ->
        match S.lookup t ~name:"ghost" with
        | Ok _ -> failf "lookup-missing" "unbound name resolved"
        | Error rc ->
            check_rc "lookup-missing" "lookup error" Errc.no_entry rc)

  let sc_publish_collision () =
    with_world (fun t ->
        let ep = S.register t (stamp 1) in
        let ep2 = S.register t (stamp 2) in
        check_rc "publish-collision" "first publish" Errc.ok
          (S.publish t ~name:"svc" ep);
        check_rc "publish-collision" "rebinding rejected" Errc.bad_request
          (S.publish t ~name:"svc" ep2))

  let sc_exchange () =
    with_world (fun t ->
        let ep = S.register t (stamp 1) in
        let a = args () in
        check_rc "exchange" "call before" Errc.ok (S.call t ep a);
        check "exchange" "old behavior" (a.(0) = 1);
        check_rc "exchange" "exchange rc" Errc.ok (S.exchange t ep (stamp 2));
        let a = args () in
        check_rc "exchange" "call after" Errc.ok (S.call t ep a);
        check "exchange" "new behavior under the same id" (a.(0) = 2))

  let sc_soft_kill_refuses_new () =
    with_world (fun t ->
        let ep = S.register t (stamp 1) in
        check_rc "soft-kill-refuses-new" "soft_kill rc" Errc.ok
          (S.soft_kill t ep);
        (* No calls were in flight, so the entry point is already freed:
           the raw ID answers no_entry, the handle is dead either way. *)
        let a = args () in
        check_rc "soft-kill-refuses-new" "raw id after quiesced kill"
          Errc.no_entry
          (S.call_id t ~id:(S.id t ep) a);
        let rc = S.call t ep a in
        check "soft-kill-refuses-new" "stale handle rejected"
          (rc = Errc.no_entry || rc = Errc.killed);
        check "soft-kill-refuses-new" "behavior did not run" (a.(0) = 0);
        let rc = S.soft_kill t ep in
        check "soft-kill-refuses-new" "second kill errors"
          (rc = Errc.no_entry || rc = Errc.killed))

  (* The in-flight call soft-kills its own entry point.  Soft-kill must
     let the accepted call complete (drain, not lose it), refuse
     everything after, and free the entry point once drained. *)
  let sc_soft_kill_drains () =
    with_world (fun t ->
        let ep = S.register t (Sigs.Kill_self_soft 123) in
        let a = args () in
        check_rc "soft-kill-drains" "in-flight call completes" Errc.ok
          (S.call t ep a);
        check "soft-kill-drains" "in-flight call's effect survives"
          (a.(0) = 123);
        check "soft-kill-drains" "drained" (S.in_flight t ep = 0);
        let a = args () in
        check_rc "soft-kill-drains" "raw id freed after drain" Errc.no_entry
          (S.call_id t ~id:(S.id t ep) a))

  (* Hard-kill from inside the running call.  The simulator lets the
     running worker finish (then retires it); the runtime aborts the
     call's result with [Errc.killed].  Either way: nothing hangs, and
     no call after the kill gets in. *)
  let sc_hard_kill_aborts () =
    with_world (fun t ->
        let ep = S.register t (Sigs.Kill_self_hard 9) in
        let a = args () in
        let rc = S.call t ep a in
        check "hard-kill-aborts" "racing call completes or aborts"
          (rc = Errc.ok || rc = Errc.killed);
        check "hard-kill-aborts" "drained" (S.in_flight t ep = 0);
        let a = args () in
        check_rc "hard-kill-aborts" "raw id freed" Errc.no_entry
          (S.call_id t ~id:(S.id t ep) a);
        let rc = S.call t ep a in
        check "hard-kill-aborts" "stale handle rejected"
          (rc = Errc.no_entry || rc = Errc.killed))

  (* Deallocate, reallocate, and prove the dead service unreachable:
     the stale handle errors, and whatever the raw ID now resolves to
     is the *new* service (runtime recycles slots under a bumped
     generation) or nothing (simulator IDs are monotonic) — never the
     old behavior. *)
  let sc_id_reuse_is_safe () =
    with_world (fun t ->
        let old = S.register t (stamp 111) in
        let old_id = S.id t old in
        check_rc "id-reuse" "kill old" Errc.ok (S.soft_kill t old);
        let fresh = S.register t (stamp 222) in
        let a = args () in
        let rc = S.call t old a in
        check "id-reuse" "stale handle rejected"
          (rc = Errc.no_entry || rc = Errc.killed);
        check "id-reuse" "old behavior unreachable via handle" (a.(0) <> 111);
        let a = args () in
        let rc = S.call_id t ~id:old_id a in
        check "id-reuse" "raw old id: freed or recycled, never the old service"
          ((rc = Errc.no_entry && a.(0) = 0) || (rc = Errc.ok && a.(0) = 222));
        let a = args () in
        check_rc "id-reuse" "new service callable" Errc.ok (S.call t fresh a);
        check "id-reuse" "new behavior" (a.(0) = 222))

  (* The full paper protocol in one pass: register -> publish -> lookup
     -> call -> exchange -> soft-kill -> reallocate. *)
  let sc_full_journey () =
    with_world (fun t ->
        let ep = S.register t (stamp 1) in
        check_rc "journey" "publish" Errc.ok (S.publish t ~name:"journey" ep);
        let id =
          match S.lookup t ~name:"journey" with
          | Ok id -> id
          | Error rc -> failf "journey" "lookup: %s" (Errc.to_string rc)
        in
        let a = args () in
        check_rc "journey" "call" Errc.ok (S.call_id t ~id a);
        check "journey" "v1 behavior" (a.(0) = 1);
        check_rc "journey" "exchange" Errc.ok (S.exchange t ep (stamp 2));
        let a = args () in
        check_rc "journey" "call v2" Errc.ok (S.call_id t ~id a);
        check "journey" "v2 behavior" (a.(0) = 2);
        check_rc "journey" "soft-kill" Errc.ok (S.soft_kill t ep);
        let a = args () in
        check_rc "journey" "gone" Errc.no_entry (S.call_id t ~id a);
        let ep2 = S.register t (stamp 3) in
        let a = args () in
        check_rc "journey" "successor callable" Errc.ok (S.call t ep2 a);
        check "journey" "successor behavior" (a.(0) = 3))

  let scenarios =
    [
      ("register-and-call", sc_register_and_call);
      ("publish-lookup-call", sc_publish_lookup_call);
      ("lookup-missing", sc_lookup_missing);
      ("publish-collision", sc_publish_collision);
      ("exchange", sc_exchange);
      ("soft-kill-refuses-new", sc_soft_kill_refuses_new);
      ("soft-kill-drains", sc_soft_kill_drains);
      ("hard-kill-aborts", sc_hard_kill_aborts);
      ("id-reuse-is-safe", sc_id_reuse_is_safe);
      ("full-journey", sc_full_journey);
    ]

  let run_all () = List.iter (fun (_, f) -> f ()) scenarios
end
