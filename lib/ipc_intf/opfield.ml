(* Opcode/flag packing for the last argument word, mirroring the paper's
   PPC_OP_FLAGS(op, flags): 16-bit opcode in the high half, 16-bit flags
   in the low half on the way in; the return code on the way out. *)

let pack ~op ~flags =
  if op < 0 || op > 0xFFFF then invalid_arg "Opfield.pack: bad opcode";
  if flags < 0 || flags > 0xFFFF then invalid_arg "Opfield.pack: bad flags";
  (op lsl 16) lor flags

let op_of packed = (packed lsr 16) land 0xFFFF
let flags_of packed = packed land 0xFFFF
