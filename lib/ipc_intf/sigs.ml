(* Module types for the IPC control plane: the contract every
   embodiment of the facility (the cycle-accurate simulator and the
   real-domain runtime) implements.

   Behaviors are expressed over the 8-word register-argument convention
   alone — an [int array] mutated in place, last word carrying the
   return code — so one conformance suite (see {!Conformance}) can
   drive both stacks without knowing anything about simulated CPUs or
   OCaml domains. *)

(** A service behavior: mutates the 8-word argument block in place.
    The embodiment wraps it in its own handler type (adding simulated
    cost charging, frame contexts, ...). *)
type behavior = int array -> unit

(** A portable behavior {e specification}.  The conformance suite used
    to register raw closures, which confined it to embodiments living in
    the registering process; a spec is a value, so it can be serialised
    (two wire words — see {!Wire_abi}) and compiled into a native
    handler on the far side of a process boundary.  Each embodiment owns
    the compilation: the simulator charges simulated cost, the runtime
    wraps a frame context, the shared-memory server builds the handler
    inside the server process. *)
type spec =
  | Stamp of int  (** write the tag into slot 0, return [Errc.ok] *)
  | Add2  (** slot 0 <- slot 0 + slot 1, return [Errc.ok] *)
  | Kill_self_soft of int
      (** soft-kill the entry point this behavior is registered under
          (from inside the running call), then stamp the tag *)
  | Kill_self_hard of int  (** likewise with a hard kill *)
  | Nap_ms of int
      (** hold the call for that many milliseconds, then return
          [Errc.ok] — the "server is busy right now" behavior the
          peer-death scenarios park calls behind *)

(** Compile a spec against an embodiment's own lifecycle hooks.
    [kill_soft]/[kill_hard] must target the entry point the compiled
    handler ends up registered under (the usual shape is a ref cell
    filled in right after registration); [nap_ms] is the embodiment's
    blocking sleep (the simulator charges cost instead of sleeping). *)
let compile ~kill_soft ~kill_hard ~nap_ms (s : spec) : behavior =
 fun a ->
  let rc = Array.length a - 1 in
  match s with
  | Stamp tag ->
      a.(0) <- tag;
      a.(rc) <- Errc.ok
  | Add2 ->
      a.(0) <- a.(0) + a.(1);
      a.(rc) <- Errc.ok
  | Kill_self_soft tag ->
      ignore (kill_soft () : int);
      a.(0) <- tag;
      a.(rc) <- Errc.ok
  | Kill_self_hard tag ->
      ignore (kill_hard () : int);
      a.(0) <- tag;
      a.(rc) <- Errc.ok
  | Nap_ms ms ->
      nap_ms ms;
      a.(rc) <- Errc.ok

(** Naming (Section 4.5.5): bind string names to entry-point IDs at the
    well-known Name Server.  All results are {!Errc} return codes. *)
module type NAMING = sig
  type t
  type principal

  val publish : t -> name:string -> owner:principal -> ep_id:int -> int
  val lookup : t -> name:string -> (int, int) result
  val unpublish : t -> name:string -> owner:principal -> int
  (** Only the publishing owner may unbind ([Errc.denied] otherwise). *)

  val bindings : t -> int
end

(** Entry-point lifecycle management (Sections 4.5.2 and 4.5.6): what
    Frank does in the paper — allocation, the two deallocation
    strategies, and on-line handler exchange. *)
module type CONTROL = sig
  type t
  type handler

  val alloc : t -> handler -> (int, int) result
  val soft_kill : t -> ep_id:int -> int
  (** Stop new calls; the entry point is freed once calls in progress
      have drained.  Never blocks. *)

  val hard_kill : t -> ep_id:int -> int
  (** Also abort calls in progress (the embodiment defines "abort": the
      simulator cancels blocked workers, the runtime turns the completed
      call's return code into [Errc.killed]). *)

  val exchange : t -> ep_id:int -> handler -> int
  (** Same ID, new routine; calls already in progress finish with the
      old one. *)
end

(** Server-side authentication (Section 4.1). *)
module type AUTH = sig
  type t
  type principal

  val grant : t -> principal -> Auth.perm list -> unit
  val revoke : t -> principal -> unit
  val check : t -> principal -> Auth.perm -> bool
end

(** The bulk-data plane: asynchronous copy engines on both substrates
    answer to this shape.  Clients submit fixed-width copy descriptors
    into a per-client SPSC submission ring, kick the mover's doorbell
    once per batch with {!flush}, and reap completions from a batched
    completion ring without blocking — handler execution overlaps
    in-flight copies.  All return codes are {!Errc} values; the warm
    submit→flush→reap path allocates nothing. *)
module type BULK = sig
  type t
  (** The engine: descriptor slabs, rings, and one mover draining them. *)

  type client
  (** A per-submitting-domain handle; single-owner, like an SPSC ring's
      producer side. *)

  val submit :
    client ->
    op:int ->
    src:int ->
    src_off:int ->
    dst:int ->
    dst_off:int ->
    len:int ->
    tag:int ->
    int
  (** Stage one descriptor ([op] is [Wellknown.bulk_copy] or
      [Wellknown.bulk_grant]).  Does {e not} ring the mover — batch with
      {!flush}.  [Errc.retry] when the descriptor slab or submission
      ring is full, [Errc.killed] after mover death. *)

  val flush : client -> int
  (** Kick the mover's doorbell once for everything staged since the
      last flush; returns how many descriptors the kick covers. *)

  val reap : client -> int
  (** Drain this client's completion ring, invoking its completion
      callback per descriptor; never blocks.  Returns completions
      delivered.  After mover death, outstanding descriptors are failed
      here with [Errc.handler_fault], exactly once each. *)

  val outstanding : client -> int
  (** Descriptors submitted and not yet reaped. *)
end

(** What the functorized conformance suite needs from an embodiment.

    [ep] is an opaque service handle as returned by registration; it
    must detect staleness across deallocation and ID reuse ([call] on a
    stale handle returns an error rather than reaching whatever service
    now owns the ID).  [call_id] is the raw small-integer path a client
    would take after a Name-Server lookup. *)
module type SUBJECT = sig
  type t
  type ep

  val name : string
  (** For failure messages: which embodiment violated the contract. *)

  val setup : unit -> t
  val teardown : t -> unit

  val register : t -> spec -> ep
  (** Register a compiled form of the spec.  Specs rather than closures
      so the subject may live in another OS process (the shared-memory
      embodiment ships the two wire words and compiles server-side). *)

  val id : t -> ep -> int

  val publish : t -> name:string -> ep -> int
  val lookup : t -> name:string -> (int, int) result

  val call : t -> ep -> int array -> int
  (** Call through the handle; [Errc] code on rejection (including
      stale handles), never an exception. *)

  val call_id : t -> id:int -> int array -> int
  (** Call by raw entry-point ID; [Errc.no_entry] when unbound. *)

  val exchange : t -> ep -> spec -> int
  val soft_kill : t -> ep -> int
  val hard_kill : t -> ep -> int

  val in_flight : t -> ep -> int
  (** Calls currently executing on the entry point (0 when idle or
      freed). *)
end
