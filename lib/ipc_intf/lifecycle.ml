(* Service-lifecycle states (paper Section 4.5.2).

   An entry point is Active until deallocated; deallocation comes in the
   paper's two strategies: soft-kill (stop new calls, let calls in
   progress complete, then free) and hard-kill (abort calls in progress
   too).  Both the simulator's `Ppc.Entry_point` and the real-domain
   runtime's `Runtime.Fastcall` slots carry exactly this state machine;
   "freed" is represented by the entry point leaving the table
   altogether (the simulator drops it, the runtime recycles the slot
   under a bumped generation). *)

type status = Active | Soft_killed | Hard_killed

let to_string = function
  | Active -> "active"
  | Soft_killed -> "soft-killed"
  | Hard_killed -> "hard-killed"
