(* The position-independent wire ABI of the fast call path.

   Everything the PPC fast path used to keep in OCaml record fields —
   request-cell state machines, SPSC ring head/tail/slots, the doorbell
   word, channel lifecycle and heartbeat words — is laid out here as
   *word offsets into a flat segment of 64-bit little-endian words*, so
   the same protocol runs over an in-heap array (one process, the
   existing zero-alloc path) and over an mmap'd file shared by two OS
   processes (the "CXL fabric" backend).  This module is the single
   source of truth: `Runtime.Segment`/`Runtime.Shm_channel` compute
   every address from these functions, ARCHITECTURE §13 renders the
   same table for humans, and the magic/version words below are how an
   attaching process refuses a segment built by an incompatible
   revision.

   Units and width.  One word = 8 bytes, stored little-endian (the ABI
   is only defined on little-endian hosts; the magic word doubles as a
   byte-order canary, since a big-endian reader sees it byte-swapped
   and refuses to attach).  Values are OCaml immediates (63-bit), so
   bit 63 of every stored word is always a sign extension — never
   payload.

   Whole-segment layout, for a segment of [capacity] cells with
   [arg_words] argument words per cell (capacity a positive power of
   two; both recorded in the header so the two sides can cross-check):

     word 0                      header           (header_words = 16)
     word 16                     submission ring  (2 + capacity words)
     word 18+capacity            reclaim ring     (2 + capacity words)
     word 20+2*capacity          cells            (capacity * cell_words)

   Rings are the Spsc_ring.Raw protocol verbatim: a consumer-owned
   head word, a producer-owned tail word, then [capacity] slot words
   holding cell indices; masking by capacity-1 maps a monotonically
   increasing counter onto a slot.  The submission ring flows client ->
   server; the reclaim ring returns abandoned cells server -> client
   (the §4.5.6 CD-reclamation side stack, re-hosted).

   Cells are the Request_slab layout flattened: one state word (same
   encodings as Request_slab — they are wire values now), one entry-
   point word, then [arg_words] argument words, the last of which is
   the return-code slot carrying an [Errc] code.  There is no parking
   mutex/condvar in the segment: processes cannot share OCaml condvars,
   so cross-process waits are spin -> yield -> nap loops on the state
   word (the Doorbell timed-park discipline). *)

(* --- identification -------------------------------------------------------- *)

let magic = 0x50_50_43_5F_41_42_49
(* "PPC_ABI" in ASCII, little-endian, 7 bytes so it stays a 63-bit
   immediate.  Also the endianness canary: byte-swapped it has bit 63
   set and cannot round-trip through an OCaml int. *)

let abi_version = 2
(* Bump on ANY layout or encoding change below.  Attach refuses a
   mismatch; there is no in-place migration — a segment is as cheap to
   rebuild as to reinterpret.  v2: word 15 became the sessions-released
   counter (was reserved/zero) and the generation seqlock is reused for
   in-place regeneration, not just first construction. *)

(* --- header ---------------------------------------------------------------- *)

let header_words = 16

let off_magic = 0
let off_version = 1

let off_generation = 2
(* Seqlock for segment construction AND regeneration: a builder reads
   the current value, writes the next odd value, (re)initialises every
   mutable word, then stores the even successor.  An attacher spins
   until it reads an even, nonzero generation — after which the layout
   words are immutable (only heartbeats, states and counters move) —
   and records it; any later mismatch between the recorded and the
   live value means the segment was rebuilt underneath the mapping and
   the session must fail closed with [Errc.stale_generation] and
   reattach.  Monotonic across rebuilds: 0 -> 1 -> 2 (first build),
   2 -> 3 -> 4 (first regeneration), and so on. *)

let off_total_words = 3
let off_capacity = 4
let off_arg_words = 5

let off_server_pid = 6
let off_client_pid = 7
(* Written by each side when it attaches in that role; 0 = not yet
   attached.  The peer-liveness probe needs a pid to poke. *)

let off_server_heartbeat = 8
let off_client_heartbeat = 9
(* Bumped by the owning side on every serve sweep / call.  A peer whose
   heartbeat is frozen across a probe window gets its pid checked; see
   "peer death" below. *)

let off_server_state = 10
let off_client_state = 11

(* Lifecycle values for the two state words. *)
let peer_absent = 0
let peer_ready = 1
let peer_shutdown = 2

let off_doorbell = 12
(* Ring counter, fetch-added by the client after publishing a tail.  A
   cross-process doorbell cannot share a condvar, so the server's park
   is a nap loop; the counter tells it (and the stats) how often it was
   rung while napping. *)

let off_reclaimed = 13
(* Abandoned cells the server has pushed through the reclaim ring —
   observability for the exactly-once recycling contract. *)

let off_peer_faults = 14
(* In-flight calls a surviving side failed with [Errc.handler_fault]
   after detecting peer death. *)

let off_sessions = 15
(* Sessions the server has released after confirming client death (or
   clean departure): fetch-added once per [release_session], so the
   supervisor and the chaos harness can reconcile injected client
   kills against observed releases by double entry. *)

(* --- rings ----------------------------------------------------------------- *)

let ring_words ~capacity = 2 + capacity

let submit_base = header_words
let submit_head = submit_base
let submit_tail = submit_base + 1
let submit_slot ~capacity i = submit_base + 2 + (i land (capacity - 1))

let reclaim_base ~capacity = submit_base + ring_words ~capacity
let reclaim_head ~capacity = reclaim_base ~capacity
let reclaim_tail ~capacity = reclaim_base ~capacity + 1

let reclaim_slot ~capacity i =
  reclaim_base ~capacity + 2 + (i land (capacity - 1))

(* --- cells ----------------------------------------------------------------- *)

(* Completion states: Request_slab's encodings, now wire values (the
   whole point of the refactor is that these numbers mean the same
   thing on both sides of a process boundary).  [state_parked] never
   appears in a shared segment — parking is per-process — but the code
   point is reserved so the two state machines stay one machine. *)
let state_free = 0
let state_pending = 1
let state_parked = 2
let state_done = 3
let state_abandoned = 4

let cell_words ~arg_words = 2 + arg_words
let cells_base ~capacity = reclaim_base ~capacity + ring_words ~capacity

let cell_base ~capacity ~arg_words i =
  cells_base ~capacity + (i * cell_words ~arg_words)

let cell_state ~capacity ~arg_words i = cell_base ~capacity ~arg_words i
let cell_ep ~capacity ~arg_words i = cell_base ~capacity ~arg_words i + 1
let cell_arg ~capacity ~arg_words i j = cell_base ~capacity ~arg_words i + 2 + j

let total_words ~capacity ~arg_words =
  cells_base ~capacity + (capacity * cell_words ~arg_words)

(* --- entry-point word ------------------------------------------------------ *)

(* The cell's entry-point word is a small sum type in one integer:

     >= 0                 versioned handle: (generation << handle_bits) | slot
     ctl_ep (-1)          control-plane call (see the op vocabulary)
     <= raw_call_base     raw-ID call: id = raw_call_base - word

   Versioned handles pack the slot ID in the low [handle_bits] bits
   (1024 entry points fit in 10) and the slot generation above, so a
   handle minted before a slot was freed and re-registered decodes to
   the same slot but a stale generation — detectably dead across the
   wire, exactly like Fastcall's in-process [ep] handles. *)

let handle_bits = 10

let pack_handle ~slot ~gen =
  if slot < 0 || slot >= 1 lsl handle_bits then
    invalid_arg "Wire_abi.pack_handle: slot out of range";
  (gen lsl handle_bits) lor slot

let handle_slot w = w land ((1 lsl handle_bits) - 1)
let handle_gen w = w lsr handle_bits

let ctl_ep = -1
let raw_call_base = -16
let pack_raw_call id = raw_call_base - id
let raw_call_id w = raw_call_base - w
let is_raw_call w = w <= raw_call_base

(* --- control-plane ops ----------------------------------------------------- *)

(* The management vocabulary a client speaks to the server process by
   calling [ctl_ep].  Op code in argument word 0; operands follow;
   results come back in word 0 with the [Errc] code in the RC slot.

     ctl_register   a1=spec code  a2=spec param      -> a0 = handle
     ctl_publish    a1=handle     a2,a3=packed name  -> rc
     ctl_lookup     a1,a2=packed name                -> a0 = raw id
     ctl_exchange   a1=handle  a2=spec code  a3=param-> rc
     ctl_soft_kill  a1=handle                        -> rc
     ctl_hard_kill  a1=handle                        -> rc
     ctl_in_flight  a1=handle                        -> a0 = count *)

let ctl_register = 1
let ctl_publish = 2
let ctl_lookup = 3
let ctl_exchange = 4
let ctl_soft_kill = 5
let ctl_hard_kill = 6
let ctl_in_flight = 7

(* --- behavior specs on the wire -------------------------------------------- *)

let spec_to_wire : Sigs.spec -> int * int = function
  | Sigs.Stamp tag -> (1, tag)
  | Sigs.Add2 -> (2, 0)
  | Sigs.Kill_self_soft tag -> (3, tag)
  | Sigs.Kill_self_hard tag -> (4, tag)
  | Sigs.Nap_ms ms -> (5, ms)

let spec_of_wire ~code ~param : Sigs.spec option =
  match code with
  | 1 -> Some (Sigs.Stamp param)
  | 2 -> Some Sigs.Add2
  | 3 -> Some (Sigs.Kill_self_soft param)
  | 4 -> Some (Sigs.Kill_self_hard param)
  | 5 -> Some (Sigs.Nap_ms param)
  | _ -> None

(* --- names on the wire ----------------------------------------------------- *)

(* Service names ride publish/lookup ops as two words of 7 bytes each
   (7, not 8, so a packed chunk stays a 63-bit immediate): up to 14
   bytes, no NUL (NUL pads the tail).  Names the registry accepts are
   shorter than that, so the bound costs nothing. *)

let name_bytes_per_word = 7
let max_name_bytes = 2 * name_bytes_per_word

let pack_name s =
  let n = String.length s in
  if n = 0 || n > max_name_bytes then None
  else if String.contains s '\000' then None
  else begin
    let word off =
      let w = ref 0 in
      for i = name_bytes_per_word - 1 downto 0 do
        let c = if off + i < n then Char.code s.[off + i] else 0 in
        w := (!w lsl 8) lor c
      done;
      !w
    in
    Some (word 0, word name_bytes_per_word)
  end

let unpack_name (w0, w1) =
  let b = Buffer.create max_name_bytes in
  let emit w =
    let w = ref w in
    for _ = 1 to name_bytes_per_word do
      let c = !w land 0xff in
      if c <> 0 then Buffer.add_char b (Char.chr c);
      w := !w lsr 8
    done
  in
  emit w0;
  emit w1;
  Buffer.contents b
