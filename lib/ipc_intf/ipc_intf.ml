(* The provider-agnostic IPC control-plane core.

   Both embodiments of the paper's facility — the cycle-accurate
   simulator (`lib/ppc`, `lib/naming`) and the real-domain runtime
   (`lib/runtime`) — implement these types: one lifecycle state
   machine, one error taxonomy, one well-known-ID map, one name hash,
   one authentication vocabulary.  The {!Conformance} functor turns the
   shared contract into an executable suite, instantiated once per
   embodiment in `test/test_conformance.ml`. *)

module Lifecycle = Lifecycle
module Errc = Errc
module Wellknown = Wellknown
module Opfield = Opfield
module Name_hash = Name_hash
module Auth = Auth
module Sigs = Sigs
module Wire_abi = Wire_abi
module Conformance = Conformance
