(* The client-stub name hash (Section 4.5.5).

   Names are strings but a PPC carries eight words, so the stub hashes
   the name into two 30-bit words and the registry is keyed by that
   pair.  FNV-1a; both stacks must agree on this function or a name
   registered through one path is invisible through the other. *)

let hash_name name =
  let h = ref 0x3f29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    name;
  let v = !h land max_int in
  (v land 0x3FFFFFFF, (v lsr 30) land 0x3FFFFFFF)
