(* Server-side authentication vocabulary (Section 4.1).

   Callers are identified to servers by a program ID; the server checks
   its own ACL.  Authentication is the server's job, not the IPC
   facility's — which is exactly what lets entry-point IDs be small
   integers and the call path stay free of shared data. *)

type perm = Read | Write | Admin

let perm_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Admin -> "admin"
