(* The shared PPC error taxonomy: the return codes the last argument
   word carries back to the caller, identical across the simulator
   (`Ppc.Reg_args`) and the real-domain runtime (`Runtime.Fastcall`).
   Values are part of the wire convention — do not renumber. *)

let ok = 0
let no_entry = -1 (* no such entry point (never bound, or fully freed) *)
let killed = -2 (* entry point soft/hard-killed, or server quiescing *)
let denied = -3 (* caller failed the server's authentication *)
let bad_request = -4 (* malformed operation *)
let no_resources = -5 (* the resource manager could not satisfy the call *)
let handler_fault = -6 (* the handler raised; contained, shard survives *)
let timed_out = -7 (* the caller's deadline expired; cell abandoned *)
let retry = -8 (* transient backpressure (ring full / pool capped) *)
let too_big = -9 (* bulk payload exceeds the per-call copy limit *)
let copy_fault = -10 (* copy engine: bad descriptor, region or ownership *)
let peer_dead = -11 (* the peer process is confirmed dead; reattach the session *)
let stale_generation = -12 (* the segment was regenerated under this mapping *)

(* Every code, for exhaustive round-trip tests.  Append-only, like the
   wire values themselves. *)
let all =
  [ ok; no_entry; killed; denied; bad_request; no_resources;
    handler_fault; timed_out; retry; too_big; copy_fault;
    peer_dead; stale_generation ]

let to_string rc =
  if rc = ok then "ok"
  else if rc = no_entry then "err_no_entry"
  else if rc = killed then "err_killed"
  else if rc = denied then "err_denied"
  else if rc = bad_request then "err_bad_request"
  else if rc = no_resources then "err_no_resources"
  else if rc = handler_fault then "err_handler_fault"
  else if rc = timed_out then "err_timed_out"
  else if rc = retry then "err_retry"
  else if rc = too_big then "err_too_big"
  else if rc = copy_fault then "err_copy_fault"
  else if rc = peer_dead then "err_peer_dead"
  else if rc = stale_generation then "err_stale_generation"
  else Printf.sprintf "rc(%d)" rc
