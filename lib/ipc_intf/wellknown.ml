(* Well-known entry points and operation codes, shared by both stacks.

   The paper's discipline (Sections 4.5.5-4.5.6): the Name Server lives
   at a well-known entry point, and PPC resources are managed by calls
   to Frank, who also has a well-known service ID.  Operations travel in
   the high half of the last argument word (see {!Opfield}). *)

let name_server_ep = 0
let resource_manager_ep = 1

(* Name Server operations (Section 4.5.5). *)
let op_register = 1
let op_lookup = 2
let op_unregister = 3

(* Resource-manager operations (Sections 4.5.2 and 4.5.6).  The last
   two are management conveniences only the simulator implements; the
   runtime manager answers them with [Errc.bad_request]. *)
let op_alloc_ep = 1
let op_soft_kill = 2
let op_hard_kill = 3
let op_exchange = 4
let op_grow_pool = 5
let op_reclaim = 6

(* CopyServer operations (Section 4.2, extended by the async bulk-data
   engine).  [op_copy_to]/[op_copy_from] move bytes under a region
   grant; [op_copy_grant] skips the copy entirely — ownership of the
   granted range is handed to the grantee and the grant is revoked on
   completion (zero-copy handoff for large payloads). *)
let op_copy_to = 1
let op_copy_from = 2
let op_copy_grant = 3

(* Copy-descriptor operation codes: the [op] word of the fixed-width
   descriptor both substrates' bulk engines consume (see
   [Transfer.Copy_desc]). *)
let bulk_copy = 1
let bulk_grant = 2
